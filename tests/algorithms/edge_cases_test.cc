#include <gtest/gtest.h>

#include "data/frequency.h"
#include "histogram/builder.h"
#include "serve/estimator.h"

namespace wavemr {
namespace {

// Degenerate and boundary configurations every algorithm must survive.

TEST(EdgeCasesTest, EmptySplitsAreHandled) {
  // n < m leaves some splits empty.
  ZipfDatasetOptions opt;
  opt.num_records = 3;
  opt.domain_size = 1 << 6;
  opt.num_splits = 5;
  ZipfDataset ds(opt);
  BuildOptions build;
  build.k = 4;
  build.epsilon = 0.9;
  for (AlgorithmKind kind : AllAlgorithms()) {
    auto result = BuildWaveletHistogram(ds, kind, build);
    ASSERT_TRUE(result.ok()) << AlgorithmName(kind);
    EXPECT_LE(result->histogram.num_terms(), build.k) << AlgorithmName(kind);
  }
}

TEST(EdgeCasesTest, SingleKeyDataset) {
  std::vector<std::vector<uint64_t>> splits(4);
  for (auto& s : splits) s.assign(500, 9);
  InMemoryDataset ds(std::move(splits), 1 << 5);
  std::vector<WCoeff> truth = TrueCoefficients(ds);
  BuildOptions build;
  build.k = 3;
  for (AlgorithmKind kind : ExactAlgorithms()) {
    auto result = BuildWaveletHistogram(ds, kind, build);
    ASSERT_TRUE(result.ok());
    double ideal = IdealSse(truth, build.k);
    EXPECT_NEAR(SseAgainstTrueCoefficients(result->ToSnapshot(), truth), ideal,
                1e-6 * (1 + ideal))
        << AlgorithmName(kind);
  }
}

TEST(EdgeCasesTest, KZeroYieldsEmptyHistogram) {
  ZipfDatasetOptions opt;
  opt.num_records = 2000;
  opt.domain_size = 1 << 8;
  opt.num_splits = 4;
  ZipfDataset ds(opt);
  BuildOptions build;
  build.k = 0;
  for (AlgorithmKind kind :
       {AlgorithmKind::kSendV, AlgorithmKind::kHWTopk, AlgorithmKind::kTwoLevelS}) {
    auto result = BuildWaveletHistogram(ds, kind, build);
    ASSERT_TRUE(result.ok()) << AlgorithmName(kind);
    EXPECT_EQ(result->histogram.num_terms(), 0u) << AlgorithmName(kind);
  }
}

TEST(EdgeCasesTest, KExceedsNonzeroCoefficients) {
  InMemoryDataset ds({{1, 1, 1}, {1, 1}}, 1 << 4);
  BuildOptions build;
  build.k = 1000;
  for (AlgorithmKind kind : ExactAlgorithms()) {
    auto result = BuildWaveletHistogram(ds, kind, build);
    ASSERT_TRUE(result.ok());
    // A single key has log2(u)+1 = 5 nonzero coefficients.
    EXPECT_EQ(result->histogram.num_terms(), 5u) << AlgorithmName(kind);
    EXPECT_NEAR(PointEstimate(result->ToSnapshot(), 1), 5.0, 1e-9);
  }
}

TEST(EdgeCasesTest, MinimalDomain) {
  InMemoryDataset ds({{0, 1, 2, 3}, {0, 0}}, 4);
  BuildOptions build;
  build.k = 4;
  for (AlgorithmKind kind : ExactAlgorithms()) {
    auto result = BuildWaveletHistogram(ds, kind, build);
    ASSERT_TRUE(result.ok());
    EXPECT_NEAR(PointEstimate(result->ToSnapshot(), 0), 3.0, 1e-9) << AlgorithmName(kind);
    EXPECT_NEAR(PointEstimate(result->ToSnapshot(), 3), 1.0, 1e-9) << AlgorithmName(kind);
  }
}

TEST(EdgeCasesTest, HWTopkRejectsOversizedDomain) {
  // The wire format uses 4-byte coefficient ids, as in the paper.
  ZipfDatasetOptions opt;
  opt.num_records = 10;
  opt.domain_size = uint64_t{1} << 33;
  opt.num_splits = 2;
  ZipfDataset ds(opt);
  BuildOptions build;
  auto result = BuildWaveletHistogram(ds, AlgorithmKind::kHWTopk, build);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(EdgeCasesTest, HugeEpsilonStillProducesAHistogram) {
  // eps = 1 draws (almost) nothing; the estimate is a legal (mostly empty)
  // histogram, never a crash.
  ZipfDatasetOptions opt;
  opt.num_records = 5000;
  opt.domain_size = 1 << 8;
  opt.num_splits = 4;
  ZipfDataset ds(opt);
  BuildOptions build;
  build.epsilon = 1.0;
  for (AlgorithmKind kind : {AlgorithmKind::kBasicS, AlgorithmKind::kImprovedS,
                             AlgorithmKind::kTwoLevelS}) {
    auto result = BuildWaveletHistogram(ds, kind, build);
    ASSERT_TRUE(result.ok()) << AlgorithmName(kind);
  }
}

TEST(EdgeCasesTest, TimeScaleMultipliesWorkNotOverhead) {
  ZipfDatasetOptions opt;
  opt.num_records = 20000;
  opt.domain_size = 1 << 10;
  opt.num_splits = 8;
  ZipfDataset ds(opt);

  BuildOptions base;
  auto a = BuildWaveletHistogram(ds, AlgorithmKind::kSendV, base);
  BuildOptions scaled = base;
  scaled.cost_model.time_scale = 100.0;
  auto b = BuildWaveletHistogram(ds, AlgorithmKind::kSendV, scaled);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Identical measured bytes; scaled work time.
  EXPECT_EQ(a->stats.TotalCommBytes(), b->stats.TotalCommBytes());
  double overhead = base.cost_model.job_overhead_s;
  double work_a = a->stats.rounds[0].shuffle_s + a->stats.rounds[0].reduce_s;
  double work_b = b->stats.rounds[0].shuffle_s + b->stats.rounds[0].reduce_s;
  EXPECT_NEAR(work_b, 100.0 * work_a, 1e-6 * work_b);
  EXPECT_DOUBLE_EQ(a->stats.rounds[0].overhead_s, overhead);
  EXPECT_DOUBLE_EQ(b->stats.rounds[0].overhead_s, overhead);
}

TEST(EdgeCasesTest, BasicSamplingCommMatchesSampledDistinctKeys) {
  ZipfDatasetOptions opt;
  opt.num_records = 50000;
  opt.domain_size = 1 << 10;
  opt.num_splits = 10;
  ZipfDataset ds(opt);
  BuildOptions build;
  build.epsilon = 0.02;  // sample 2500 of 50000
  auto result = BuildWaveletHistogram(ds, AlgorithmKind::kBasicS, build);
  ASSERT_TRUE(result.ok());
  const RoundStats& round = result->stats.rounds[0];
  // One 8-byte pair per distinct sampled key per split; bounded by the
  // total sample size 1/eps^2.
  EXPECT_EQ(round.shuffle_bytes, round.shuffle_pairs * 8);
  EXPECT_LE(round.shuffle_pairs, static_cast<uint64_t>(1.0 / (0.02 * 0.02)) + 10);
  EXPECT_GT(round.shuffle_pairs, 100u);
}

}  // namespace
}  // namespace wavemr
