#include "exact/h_wtopk2d.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "wavelet/topk.h"

namespace wavemr {
namespace {

std::vector<std::vector<Cell2D>> RandomSplits(size_t m, uint64_t rows, uint64_t cols,
                                              size_t cells_per_split, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<Cell2D>> splits(m);
  for (auto& split : splits) {
    for (size_t i = 0; i < cells_per_split; ++i) {
      split.push_back({rng.NextBounded(rows), rng.NextBounded(cols),
                       1.0 + static_cast<double>(rng.NextBounded(50))});
    }
  }
  return splits;
}

std::vector<WCoeff> BruteForce2DTopK(const std::vector<std::vector<Cell2D>>& splits,
                                     uint64_t rows, uint64_t cols, size_t k) {
  std::vector<double> dense(rows * cols, 0.0);
  for (const auto& split : splits) {
    for (const Cell2D& c : split) dense[c.x * cols + c.y] += c.weight;
  }
  std::vector<double> w = ForwardHaar2D(dense, rows, cols);
  std::vector<WCoeff> all;
  for (uint64_t i = 0; i < w.size(); ++i) {
    if (w[i] != 0.0) all.push_back({i, w[i]});
  }
  return TopKByMagnitude(all, k);
}

struct Case2D {
  size_t m;
  uint64_t rows, cols;
  size_t cells;
  size_t k;
  uint64_t seed;
};

class HWTopk2DTest : public ::testing::TestWithParam<Case2D> {};

TEST_P(HWTopk2DTest, MatchesBruteForce) {
  const Case2D& c = GetParam();
  auto splits = RandomSplits(c.m, c.rows, c.cols, c.cells, c.seed);
  auto result = HWTopk2D(splits, c.rows, c.cols, c.k);
  ASSERT_TRUE(result.ok());
  std::vector<WCoeff> want = BruteForce2DTopK(splits, c.rows, c.cols, c.k);
  ASSERT_EQ(result->topk.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(std::fabs(result->topk[i].value), std::fabs(want[i].value), 1e-8)
        << "rank " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, HWTopk2DTest,
                         ::testing::Values(Case2D{4, 16, 16, 40, 10, 1},
                                           Case2D{8, 32, 8, 100, 5, 2},
                                           Case2D{2, 8, 8, 200, 20, 3},
                                           Case2D{16, 64, 64, 50, 30, 4}));

TEST(HWTopk2DTest, CommunicatesLessThanSendAll) {
  auto splits = RandomSplits(8, 32, 32, 120, 9);
  auto result = HWTopk2D(splits, 32, 32, 10);
  ASSERT_TRUE(result.ok());
  uint64_t send_all = 0;
  for (const auto& split : splits) {
    send_all += SparseHaar2DMap(split, 32, 32).size();
  }
  EXPECT_LT(result->protocol.Messages(), send_all);
}

TEST(HWTopk2DTest, RejectsBadDomains) {
  EXPECT_FALSE(HWTopk2D({}, 10, 8, 5).ok());
  EXPECT_FALSE(HWTopk2D({{{100, 0, 1.0}}}, 8, 8, 5).ok());
}

TEST(HWTopk2DTest, EmptySplitsGiveEmptyResult) {
  auto result = HWTopk2D({{}, {}}, 8, 8, 5);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->topk.empty());
}

}  // namespace
}  // namespace wavemr
