#include <gtest/gtest.h>

#include <cmath>

#include "approx/sampling_common.h"
#include "data/frequency.h"
#include "histogram/builder.h"
#include "serve/estimator.h"
#include "mapreduce/job.h"
#include "wavelet/topk.h"

namespace wavemr {
namespace {

ZipfDataset TestDataset(uint64_t seed = 5) {
  ZipfDatasetOptions opt;
  opt.num_records = 40000;
  opt.domain_size = 1 << 10;
  opt.alpha = 1.1;
  opt.num_splits = 16;
  opt.seed = seed;
  return ZipfDataset(opt);
}

TEST(SamplingCommonTest, LevelOneProbabilityClamped) {
  EXPECT_DOUBLE_EQ(LevelOneProbability(1.0, 100), 0.01);
  EXPECT_DOUBLE_EQ(LevelOneProbability(0.001, 100), 1.0);  // clamped
}

TEST(SamplingCommonTest, SampleSizeTracksRate) {
  ZipfDataset ds = TestDataset();
  CostModel cm;
  TaskCost cost;
  SplitAccess access(ds, 0, cm, &cost);
  double p = 0.05;
  LocalSample sample = DrawLevelOneSample(access, p, 7);
  uint64_t expect = static_cast<uint64_t>(
      std::llround(p * static_cast<double>(ds.SplitRecords(0))));
  EXPECT_EQ(sample.t_j, expect);
  uint64_t total = 0;
  for (const auto& [key, c] : sample.counts) total += c;
  EXPECT_EQ(total, sample.t_j);
  EXPECT_EQ(cost.records_read, sample.t_j);
}

TEST(SamplingCommonTest, FullRateSamplesEverything) {
  ZipfDataset ds = TestDataset();
  CostModel cm;
  TaskCost cost;
  SplitAccess access(ds, 1, cm, &cost);
  LocalSample sample = DrawLevelOneSample(access, 1.0, 7);
  EXPECT_EQ(sample.t_j, ds.SplitRecords(1));
  FrequencyMap truth = BuildSplitFrequencyMap(ds, 1);
  ASSERT_EQ(sample.counts.size(), truth.size());
  for (const auto& [key, c] : truth) EXPECT_EQ(sample.counts.at(key), c);
}

BuildOptions SamplerOptions(double epsilon) {
  BuildOptions opt;
  opt.k = 15;
  opt.epsilon = epsilon;
  opt.seed = 99;
  return opt;
}

TEST(SamplersTest, CommunicationOrdering) {
  // The paper's headline: TwoLevel-S < Improved-S < Basic-S on the wire.
  ZipfDataset ds = TestDataset();
  BuildOptions opt = SamplerOptions(0.02);
  auto basic = BuildWaveletHistogram(ds, AlgorithmKind::kBasicS, opt);
  auto improved = BuildWaveletHistogram(ds, AlgorithmKind::kImprovedS, opt);
  auto twolevel = BuildWaveletHistogram(ds, AlgorithmKind::kTwoLevelS, opt);
  ASSERT_TRUE(basic.ok());
  ASSERT_TRUE(improved.ok());
  ASSERT_TRUE(twolevel.ok());
  EXPECT_LT(twolevel->stats.TotalCommBytes(), improved->stats.TotalCommBytes());
  EXPECT_LT(improved->stats.TotalCommBytes(), basic->stats.TotalCommBytes());
}

TEST(SamplersTest, TwoLevelCommunicationNearTheoremBound) {
  // Theorem 3: expected O(sqrt(m)/eps) pairs. Check within a small constant.
  ZipfDataset ds = TestDataset();
  double epsilon = 0.02;
  BuildOptions opt = SamplerOptions(epsilon);
  auto result = BuildWaveletHistogram(ds, AlgorithmKind::kTwoLevelS, opt);
  ASSERT_TRUE(result.ok());
  double bound =
      2.0 * std::sqrt(static_cast<double>(ds.info().num_splits)) / epsilon;
  EXPECT_LT(result->stats.rounds[0].shuffle_pairs, bound * 4.0);
}

TEST(SamplersTest, FullSamplingRateWithHeavyKeysIsExact) {
  // Designed so TwoLevel-S degenerates to the exact computation:
  // eps = 1/sqrt(n) makes p = 1 (every record sampled), and a uniform
  // dataset puts every local count (256) above the second-level threshold
  // 1/(eps*sqrt(m)) = 45.25, so each split ships exact counts for every key.
  // With k = u, the histogram reconstructs v exactly: SSE == 0.
  const uint64_t u = 16, n = 4096;
  std::vector<std::vector<uint64_t>> splits(2);
  for (int j = 0; j < 2; ++j) {
    for (uint64_t key = 0; key < u; ++key) {
      for (int r = 0; r < 128; ++r) splits[j].push_back(key);
    }
  }
  InMemoryDataset ds(std::move(splits), u);
  ASSERT_EQ(ds.info().num_records, n);
  std::vector<WCoeff> truth = TrueCoefficients(ds);

  BuildOptions opt = SamplerOptions(1.0 / std::sqrt(static_cast<double>(n)));
  opt.k = u;
  auto result = BuildWaveletHistogram(ds, AlgorithmKind::kTwoLevelS, opt);
  ASSERT_TRUE(result.ok());
  double sse = SseAgainstTrueCoefficients(result->ToSnapshot(), truth);
  EXPECT_NEAR(sse, 0.0, 1e-6);
  // And the point estimates are the exact frequencies.
  for (uint64_t x = 0; x < u; ++x) {
    EXPECT_NEAR(PointEstimate(result->ToSnapshot(), x), 256.0, 1e-6);
  }
}

TEST(SamplersTest, TwoLevelEstimatorIsUnbiased) {
  // Average v-hat over repeated runs (different seeds) approaches v for a
  // heavy key -- Theorem 1 / Corollary 1. We reconstruct v-hat(x) from the
  // built histogram of a tiny domain where k covers all coefficients.
  ZipfDatasetOptions small;
  small.num_records = 8000;
  small.domain_size = 1 << 4;  // 16 keys: k = 16 keeps every coefficient
  small.alpha = 1.0;
  small.num_splits = 4;
  small.seed = 3;
  ZipfDataset ds(small);
  FrequencyMap truth = BuildFrequencyMap(ds);
  uint64_t heavy_key = 0;
  uint64_t best = 0;
  for (const auto& [key, c] : truth) {
    if (c > best) {
      best = c;
      heavy_key = key;
    }
  }

  const int kTrials = 40;
  double sum = 0.0;
  for (int t = 0; t < kTrials; ++t) {
    BuildOptions opt;
    opt.k = 16;
    opt.epsilon = 0.05;
    opt.seed = 1000 + t;
    auto result = BuildWaveletHistogram(ds, AlgorithmKind::kTwoLevelS, opt);
    ASSERT_TRUE(result.ok());
    sum += PointEstimate(result->ToSnapshot(), heavy_key);
  }
  double mean = sum / kTrials;
  double v = static_cast<double>(truth[heavy_key]);
  // Standard deviation per trial is ~eps*n = 400; mean of 40 trials ~63.
  EXPECT_NEAR(mean, v, 4.0 * 0.05 * 8000 / std::sqrt(static_cast<double>(kTrials)));
}

TEST(SamplersTest, ImprovedIsBiasedDownOnLightKeys) {
  // Improved-S drops every local count below eps*t_j, so rare keys are
  // underestimated on average (the bias the paper criticizes).
  ZipfDataset ds = TestDataset(17);
  FrequencyMap truth = BuildFrequencyMap(ds);

  BuildOptions opt = SamplerOptions(0.02);
  opt.k = 1 << 10;  // keep everything: histogram == estimated vector
  auto improved = BuildWaveletHistogram(ds, AlgorithmKind::kImprovedS, opt);
  ASSERT_TRUE(improved.ok());
  // Total mass of the reconstruction should be visibly below n (mass lost).
  double total = RangeSum(improved->ToSnapshot(), 0, ds.info().domain_size);
  EXPECT_LT(total, 0.95 * static_cast<double>(ds.info().num_records));

  auto twolevel = BuildWaveletHistogram(ds, AlgorithmKind::kTwoLevelS, opt);
  ASSERT_TRUE(twolevel.ok());
  double total2 = RangeSum(twolevel->ToSnapshot(), 0, ds.info().domain_size);
  EXPECT_NEAR(total2, static_cast<double>(ds.info().num_records),
              0.15 * static_cast<double>(ds.info().num_records));
}

TEST(SamplersTest, SseOrderingOnDefaults) {
  ZipfDataset ds = TestDataset(23);
  std::vector<WCoeff> truth = TrueCoefficients(ds);
  BuildOptions opt = SamplerOptions(0.02);
  auto improved = BuildWaveletHistogram(ds, AlgorithmKind::kImprovedS, opt);
  auto twolevel = BuildWaveletHistogram(ds, AlgorithmKind::kTwoLevelS, opt);
  ASSERT_TRUE(improved.ok());
  ASSERT_TRUE(twolevel.ok());
  double ideal = IdealSse(truth, opt.k);
  double sse_improved = SseAgainstTrueCoefficients(improved->ToSnapshot(), truth);
  double sse_twolevel = SseAgainstTrueCoefficients(twolevel->ToSnapshot(), truth);
  EXPECT_GE(sse_improved, ideal * (1 - 1e-9));
  EXPECT_GE(sse_twolevel, ideal * (1 - 1e-9));
  // The paper's Figure 7: TwoLevel-S beats Improved-S on accuracy.
  EXPECT_LT(sse_twolevel, sse_improved);
}

TEST(SamplersTest, DeterministicUnderFixedSeed) {
  ZipfDataset ds = TestDataset();
  BuildOptions opt = SamplerOptions(0.02);
  auto a = BuildWaveletHistogram(ds, AlgorithmKind::kTwoLevelS, opt);
  auto b = BuildWaveletHistogram(ds, AlgorithmKind::kTwoLevelS, opt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->stats.TotalCommBytes(), b->stats.TotalCommBytes());
  ASSERT_EQ(a->histogram.num_terms(), b->histogram.num_terms());
  for (size_t i = 0; i < a->histogram.num_terms(); ++i) {
    EXPECT_EQ(a->histogram.coefficients()[i].index,
              b->histogram.coefficients()[i].index);
    EXPECT_DOUBLE_EQ(a->histogram.coefficients()[i].value,
                     b->histogram.coefficients()[i].value);
  }
}

TEST(SamplersTest, EpsilonSweepsCostDown) {
  // Larger eps => smaller samples => less communication (Figure 8a).
  ZipfDataset ds = TestDataset();
  uint64_t prev = UINT64_MAX;
  for (double eps : {0.01, 0.03, 0.1}) {
    auto result =
        BuildWaveletHistogram(ds, AlgorithmKind::kTwoLevelS, SamplerOptions(eps));
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->stats.TotalCommBytes(), prev);
    prev = result->stats.TotalCommBytes();
  }
}

}  // namespace
}  // namespace wavemr
