#include <gtest/gtest.h>

#include <cmath>

#include "data/frequency.h"
#include "histogram/builder.h"
#include "serve/estimator.h"
#include "wavelet/topk.h"

namespace wavemr {
namespace {

// Small but non-trivial Zipf dataset shared by the exact-method tests.
ZipfDataset TestDataset(uint64_t seed = 5) {
  ZipfDatasetOptions opt;
  opt.num_records = 20000;
  opt.domain_size = 1 << 10;
  opt.alpha = 1.1;
  opt.num_splits = 9;
  opt.seed = seed;
  return ZipfDataset(opt);
}

BuildOptions TestOptions() {
  BuildOptions opt;
  opt.k = 12;
  return opt;
}

// Exact methods may tie-break differently; compare magnitude sequences and
// the SSE against truth (which is tie-invariant).
void ExpectIdealTopK(const BuildResult& result, const std::vector<WCoeff>& truth,
                     size_t k) {
  std::vector<WCoeff> ideal = TopKByMagnitude(truth, k);
  ASSERT_EQ(result.histogram.num_terms(), ideal.size());
  // Coefficients sorted by index in the histogram; compare via SSE and via
  // magnitude multiset.
  std::vector<double> got_mags, want_mags;
  for (const WCoeff& c : result.histogram.coefficients()) {
    got_mags.push_back(std::fabs(c.value));
  }
  for (const WCoeff& c : ideal) want_mags.push_back(std::fabs(c.value));
  std::sort(got_mags.begin(), got_mags.end());
  std::sort(want_mags.begin(), want_mags.end());
  for (size_t i = 0; i < got_mags.size(); ++i) {
    EXPECT_NEAR(got_mags[i], want_mags[i], 1e-6) << "rank " << i;
  }
  double ideal_sse = IdealSse(truth, k);
  EXPECT_NEAR(SseAgainstTrueCoefficients(result.ToSnapshot(), truth), ideal_sse,
              1e-6 * (1.0 + ideal_sse));
}

TEST(SendVTest, ProducesIdealTopK) {
  ZipfDataset ds = TestDataset();
  std::vector<WCoeff> truth = TrueCoefficients(ds);
  auto result = BuildWaveletHistogram(ds, AlgorithmKind::kSendV, TestOptions());
  ASSERT_TRUE(result.ok());
  ExpectIdealTopK(*result, truth, TestOptions().k);
  EXPECT_EQ(result->stats.NumRounds(), 1u);
}

TEST(SendVTest, CommunicationCountsDistinctKeysPerSplit) {
  ZipfDataset ds = TestDataset();
  auto result = BuildWaveletHistogram(ds, AlgorithmKind::kSendV, TestOptions());
  ASSERT_TRUE(result.ok());
  uint64_t pairs = 0;
  for (uint64_t j = 0; j < ds.info().num_splits; ++j) {
    pairs += BuildSplitFrequencyMap(ds, j).size();
  }
  EXPECT_EQ(result->stats.rounds[0].shuffle_pairs, pairs);
  EXPECT_EQ(result->stats.rounds[0].shuffle_bytes, pairs * 8);
}

TEST(SendVTest, PerRecordEmissionWithCombinerMatchesAggregated) {
  ZipfDataset ds = TestDataset();
  std::vector<WCoeff> truth = TrueCoefficients(ds);
  BuildOptions opt = TestOptions();
  opt.send_v_emit_per_record = true;  // combiner on by default
  auto result = BuildWaveletHistogram(ds, AlgorithmKind::kSendV, opt);
  ASSERT_TRUE(result.ok());
  ExpectIdealTopK(*result, truth, opt.k);

  // Without the combiner the answer is identical but the shuffle explodes
  // to one pair per record.
  opt.send_v_disable_combiner = true;
  auto nocombine = BuildWaveletHistogram(ds, AlgorithmKind::kSendV, opt);
  ASSERT_TRUE(nocombine.ok());
  ExpectIdealTopK(*nocombine, truth, opt.k);
  EXPECT_EQ(nocombine->stats.rounds[0].shuffle_pairs, ds.info().num_records);
  EXPECT_GT(nocombine->stats.rounds[0].shuffle_bytes,
            result->stats.rounds[0].shuffle_bytes);
}

TEST(SendCoefTest, ProducesIdealTopK) {
  ZipfDataset ds = TestDataset();
  std::vector<WCoeff> truth = TrueCoefficients(ds);
  auto result = BuildWaveletHistogram(ds, AlgorithmKind::kSendCoef, TestOptions());
  ASSERT_TRUE(result.ok());
  ExpectIdealTopK(*result, truth, TestOptions().k);
}

TEST(SendCoefTest, DenseAblationMatchesSparse) {
  ZipfDatasetOptions small;
  small.num_records = 4000;
  small.domain_size = 1 << 8;
  small.num_splits = 5;
  ZipfDataset ds(small);
  std::vector<WCoeff> truth = TrueCoefficients(ds);

  BuildOptions opt = TestOptions();
  auto sparse = BuildWaveletHistogram(ds, AlgorithmKind::kSendCoef, opt);
  opt.use_dense_local_transform = true;
  auto dense = BuildWaveletHistogram(ds, AlgorithmKind::kSendCoef, opt);
  ASSERT_TRUE(sparse.ok());
  ASSERT_TRUE(dense.ok());
  ExpectIdealTopK(*sparse, truth, opt.k);
  ExpectIdealTopK(*dense, truth, opt.k);
  // Nearly identical communication: the nonzero coefficient sets may differ
  // only where floating-point cancellation is exact in one summation order
  // but not the other.
  double a = static_cast<double>(sparse->stats.TotalCommBytes());
  double b = static_cast<double>(dense->stats.TotalCommBytes());
  EXPECT_NEAR(a, b, 0.15 * b);
}

TEST(SendCoefTest, CommunicatesMoreThanSendV) {
  // The paper's Figure 12 argument: nonzero local coefficients outnumber
  // distinct keys, so Send-Coef ships more than Send-V.
  ZipfDataset ds = TestDataset();
  auto coef = BuildWaveletHistogram(ds, AlgorithmKind::kSendCoef, TestOptions());
  auto sendv = BuildWaveletHistogram(ds, AlgorithmKind::kSendV, TestOptions());
  ASSERT_TRUE(coef.ok());
  ASSERT_TRUE(sendv.ok());
  EXPECT_GT(coef->stats.TotalCommBytes(), sendv->stats.TotalCommBytes());
}

class HWTopkSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HWTopkSeedTest, ProducesIdealTopK) {
  ZipfDataset ds = TestDataset(GetParam());
  std::vector<WCoeff> truth = TrueCoefficients(ds);
  auto result = BuildWaveletHistogram(ds, AlgorithmKind::kHWTopk, TestOptions());
  ASSERT_TRUE(result.ok());
  ExpectIdealTopK(*result, truth, TestOptions().k);
  EXPECT_EQ(result->stats.NumRounds(), 3u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HWTopkSeedTest, ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(HWTopkTest, CommunicatesLessThanSendV) {
  ZipfDataset ds = TestDataset();
  auto topk = BuildWaveletHistogram(ds, AlgorithmKind::kHWTopk, TestOptions());
  auto sendv = BuildWaveletHistogram(ds, AlgorithmKind::kSendV, TestOptions());
  ASSERT_TRUE(topk.ok());
  ASSERT_TRUE(sendv.ok());
  EXPECT_LT(topk->stats.rounds[0].shuffle_bytes + topk->stats.rounds[1].shuffle_bytes +
                topk->stats.rounds[2].shuffle_bytes,
            sendv->stats.rounds[0].shuffle_bytes);
}

TEST(HWTopkTest, VariousKValues) {
  ZipfDataset ds = TestDataset(11);
  std::vector<WCoeff> truth = TrueCoefficients(ds);
  for (size_t k : {1u, 5u, 30u, 50u}) {
    BuildOptions opt;
    opt.k = k;
    auto result = BuildWaveletHistogram(ds, AlgorithmKind::kHWTopk, opt);
    ASSERT_TRUE(result.ok()) << "k=" << k;
    ExpectIdealTopK(*result, truth, k);
  }
}

TEST(HWTopkTest, SingleSplitDegenerates) {
  ZipfDatasetOptions opt;
  opt.num_records = 3000;
  opt.domain_size = 1 << 8;
  opt.num_splits = 1;
  ZipfDataset ds(opt);
  std::vector<WCoeff> truth = TrueCoefficients(ds);
  auto result = BuildWaveletHistogram(ds, AlgorithmKind::kHWTopk, TestOptions());
  ASSERT_TRUE(result.ok());
  ExpectIdealTopK(*result, truth, TestOptions().k);
}

TEST(HWTopkTest, UniformDataStressesNegativePruning) {
  // Near-uniform data yields many small coefficients of both signs -- the
  // regime where one-sided TPUT pruning would be unsound.
  ZipfDatasetOptions opt;
  opt.num_records = 30000;
  opt.domain_size = 1 << 9;
  opt.alpha = 0.3;
  opt.num_splits = 8;
  ZipfDataset ds(opt);
  std::vector<WCoeff> truth = TrueCoefficients(ds);
  BuildOptions build = TestOptions();
  auto result = BuildWaveletHistogram(ds, AlgorithmKind::kHWTopk, build);
  ASSERT_TRUE(result.ok());
  ExpectIdealTopK(*result, truth, build.k);
}

TEST(ExactMethodsTest, AllThreeAgree) {
  ZipfDataset ds = TestDataset(21);
  BuildOptions opt = TestOptions();
  auto a = BuildWaveletHistogram(ds, AlgorithmKind::kSendV, opt);
  auto b = BuildWaveletHistogram(ds, AlgorithmKind::kSendCoef, opt);
  auto c = BuildWaveletHistogram(ds, AlgorithmKind::kHWTopk, opt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  std::vector<WCoeff> truth = TrueCoefficients(ds);
  double sse_a = SseAgainstTrueCoefficients(a->ToSnapshot(), truth);
  double sse_b = SseAgainstTrueCoefficients(b->ToSnapshot(), truth);
  double sse_c = SseAgainstTrueCoefficients(c->ToSnapshot(), truth);
  EXPECT_NEAR(sse_a, sse_b, 1e-6 * (1 + sse_a));
  EXPECT_NEAR(sse_a, sse_c, 1e-6 * (1 + sse_a));
}

}  // namespace
}  // namespace wavemr
