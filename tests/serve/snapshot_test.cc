#include "serve/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "core/crc32c.h"
#include "data/dataset.h"
#include "histogram/builder.h"

namespace wavemr {
namespace {

// Recomputes the CRC trailer after a deliberate byte mutation, so a test
// reaches the semantic validation that sits behind the checksum gate.
void FixupCrc(std::string* bytes) {
  ASSERT_GE(bytes->size(), sizeof(uint32_t));
  const size_t body = bytes->size() - sizeof(uint32_t);
  const uint32_t crc = Crc32c(bytes->data(), body);
  std::memcpy(bytes->data() + body, &crc, sizeof(crc));
}

HistogramSnapshot MakeSample() {
  SnapshotMetadata meta;
  meta.algorithm = "H-WTopk";
  meta.build_comm_bytes = 12345;
  meta.build_sim_seconds = 6.5;
  // Unsorted on purpose: FromCoefficients sorts by index.
  return HistogramSnapshot::FromCoefficients(
      8, {{5, -1.25}, {0, 4.0}, {2, 3.0}, {1, -3.0}, {3, 0.5}}, meta);
}

TEST(HistogramSnapshotTest, LayoutIsIndexAscending) {
  HistogramSnapshot snap = MakeSample();
  EXPECT_EQ(snap.domain_size(), 8u);
  EXPECT_EQ(snap.num_levels(), 3u);
  EXPECT_EQ(snap.num_terms(), 5u);
  EXPECT_TRUE(snap.has_average());
  const std::vector<uint64_t> want_idx = {0, 1, 2, 3, 5};
  EXPECT_EQ(snap.indices(), want_idx);
  const std::vector<double> want_val = {4.0, -3.0, 3.0, 0.5, -1.25};
  EXPECT_EQ(snap.values(), want_val);
}

TEST(HistogramSnapshotTest, LevelRangesSliceTheErrorTree) {
  HistogramSnapshot snap = MakeSample();
  // Detail level j holds indices [2^j, 2^(j+1)): positions after the average.
  EXPECT_EQ(snap.LevelRange(0), (std::pair<size_t, size_t>{1, 2}));  // idx 1
  EXPECT_EQ(snap.LevelRange(1), (std::pair<size_t, size_t>{2, 4}));  // idx 2,3
  EXPECT_EQ(snap.LevelRange(2), (std::pair<size_t, size_t>{4, 5}));  // idx 5
}

TEST(HistogramSnapshotTest, FindIndex) {
  HistogramSnapshot snap = MakeSample();
  EXPECT_EQ(snap.FindIndex(0), 0u);
  EXPECT_EQ(snap.FindIndex(3), 3u);
  EXPECT_EQ(snap.FindIndex(5), 4u);
  EXPECT_EQ(snap.FindIndex(4), HistogramSnapshot::npos);
  EXPECT_EQ(snap.FindIndex(7), HistogramSnapshot::npos);
}

TEST(HistogramSnapshotTest, TopCoefficientsMagnitudeDescendingTiesByIndex) {
  HistogramSnapshot snap = MakeSample();
  std::vector<WCoeff> top = snap.TopCoefficients(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].index, 0u);  // |4.0|
  EXPECT_EQ(top[1].index, 1u);  // |-3.0|, tie with index 2 -> lower index
  EXPECT_EQ(top[2].index, 2u);  // |3.0|
  // count clamps to num_terms.
  EXPECT_EQ(snap.TopCoefficients(100).size(), 5u);
  EXPECT_TRUE(snap.TopCoefficients(0).empty());
}

TEST(HistogramSnapshotTest, RoundTripPreservesEverything) {
  HistogramSnapshot snap = MakeSample();
  auto back = HistogramSnapshot::Deserialize(snap.Serialize());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->domain_size(), snap.domain_size());
  EXPECT_EQ(back->indices(), snap.indices());
  EXPECT_EQ(back->values(), snap.values());
  EXPECT_EQ(back->metadata().algorithm, "H-WTopk");
  EXPECT_EQ(back->metadata().build_comm_bytes, 12345u);
  EXPECT_EQ(back->metadata().build_sim_seconds, 6.5);
  // Derived indexes rebuilt identically.
  EXPECT_EQ(back->LevelRange(1), snap.LevelRange(1));
  EXPECT_EQ(back->TopCoefficients(2)[0].index, snap.TopCoefficients(2)[0].index);
}

TEST(HistogramSnapshotTest, RoundTripEmptySnapshot) {
  HistogramSnapshot empty;
  EXPECT_EQ(empty.num_terms(), 0u);
  EXPECT_FALSE(empty.has_average());
  auto back = HistogramSnapshot::Deserialize(empty.Serialize());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->domain_size(), 1u);
  EXPECT_EQ(back->num_terms(), 0u);
}

TEST(HistogramSnapshotTest, RoundTripSingleCoefficient) {
  HistogramSnapshot one = HistogramSnapshot::FromCoefficients(16, {{9, 2.5}});
  auto back = HistogramSnapshot::Deserialize(one.Serialize());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_terms(), 1u);
  EXPECT_EQ(back->indices()[0], 9u);
  EXPECT_EQ(back->values()[0], 2.5);
  EXPECT_FALSE(back->has_average());
}

TEST(HistogramSnapshotTest, DeserializeRejectsBadMagic) {
  std::string bytes = MakeSample().Serialize();
  bytes[0] ^= 0xFF;
  auto r = HistogramSnapshot::Deserialize(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(HistogramSnapshotTest, DeserializeRejectsEveryTruncation) {
  const std::string bytes = MakeSample().Serialize();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    auto r = HistogramSnapshot::Deserialize(bytes.substr(0, cut));
    EXPECT_FALSE(r.ok()) << "prefix of " << cut << " bytes was accepted";
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(HistogramSnapshotTest, DeserializeRejectsNonPowerOfTwoDomain) {
  Serializer s;
  HistogramSnapshot::FromCoefficients(8, {{1, 1.0}}).SerializeTo(&s);
  std::string bytes = s.Release();
  bytes[8] = 7;  // u field follows the 8-byte magic
  FixupCrc(&bytes);
  auto r = HistogramSnapshot::Deserialize(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(HistogramSnapshotTest, DeserializeRejectsOutOfDomainIndex) {
  std::string bytes = MakeSample().Serialize();
  bytes[8] = 4;  // shrink u below the largest stored index (5)
  FixupCrc(&bytes);
  auto r = HistogramSnapshot::Deserialize(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// The robustness guarantee behind the CRC trailer: no single flipped bit
// anywhere in the file -- header, payload, metadata, or the trailer itself --
// deserializes successfully.
TEST(HistogramSnapshotTest, DeserializeRejectsEveryBitFlip) {
  const std::string good = MakeSample().Serialize();
  ASSERT_TRUE(HistogramSnapshot::Deserialize(good).ok());
  for (size_t i = 0; i < good.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string bad = good;
      bad[i] = static_cast<char>(bad[i] ^ (1u << bit));
      auto r = HistogramSnapshot::Deserialize(bad);
      EXPECT_FALSE(r.ok()) << "byte " << i << " bit " << bit << " accepted";
    }
  }
}

TEST(HistogramSnapshotTest, ChecksumMismatchMessageIsActionable) {
  std::string bytes = MakeSample().Serialize();
  bytes[bytes.size() / 2] ^= 0x40;  // corrupt the payload, not the trailer
  auto r = HistogramSnapshot::Deserialize(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("checksum mismatch"), std::string::npos)
      << r.status().ToString();
}

TEST(HistogramSnapshotTest, DeserializeRejectsLegacyWmsnap01) {
  std::string bytes = MakeSample().Serialize();
  ASSERT_EQ(bytes[7], '2');  // magic is "WMSNAP02" in byte order
  bytes[7] = '1';
  auto r = HistogramSnapshot::Deserialize(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("WMSNAP01"), std::string::npos)
      << r.status().ToString();
}

TEST(HistogramSnapshotTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/wavemr_snapshot_test.snap";
  HistogramSnapshot snap = MakeSample();
  ASSERT_TRUE(snap.WriteFile(path).ok());
  auto back = HistogramSnapshot::ReadFile(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->indices(), snap.indices());
  EXPECT_EQ(back->values(), snap.values());
  std::remove(path.c_str());
  EXPECT_FALSE(HistogramSnapshot::ReadFile(path).ok());
}

TEST(HistogramSnapshotTest, ToSnapshotCarriesBuildProvenance) {
  InMemoryDataset ds({{0, 0, 1, 3}, {1, 1, 2, 0}}, 4);
  BuildOptions options;
  options.k = 4;
  auto result = BuildWaveletHistogram(ds, AlgorithmKind::kSendV, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  HistogramSnapshot snap = result->ToSnapshot();
  EXPECT_EQ(snap.metadata().algorithm, "Send-V");
  EXPECT_EQ(snap.metadata().build_comm_bytes, result->stats.TotalCommBytes());
  EXPECT_EQ(snap.metadata().build_sim_seconds, result->stats.TotalSeconds());
  EXPECT_EQ(snap.domain_size(), result->histogram.domain_size());
  EXPECT_EQ(snap.num_terms(), result->histogram.num_terms());
  // Same coefficients, index-ascending.
  std::vector<WCoeff> coeffs = snap.Coefficients();
  ASSERT_EQ(coeffs.size(), result->histogram.coefficients().size());
  for (size_t i = 0; i < coeffs.size(); ++i) {
    EXPECT_EQ(coeffs[i].index, result->histogram.coefficients()[i].index);
    EXPECT_EQ(coeffs[i].value, result->histogram.coefficients()[i].value);
  }
}

}  // namespace
}  // namespace wavemr
