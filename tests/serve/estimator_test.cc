#include "serve/estimator.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "core/rng.h"
#include "data/dataset.h"
#include "data/frequency.h"
#include "histogram/builder.h"
#include "serve/snapshot.h"
#include "wavelet/coefficient.h"
#include "wavelet/haar.h"
#include "wavelet/topk.h"

namespace wavemr {
namespace {

uint64_t Bits(double d) { return std::bit_cast<uint64_t>(d); }

std::vector<WCoeff> AllCoeffs(const std::vector<double>& v) {
  std::vector<double> w = ForwardHaar(v);
  std::vector<WCoeff> out;
  for (uint64_t i = 0; i < w.size(); ++i) {
    if (w[i] != 0.0) out.push_back({i, w[i]});
  }
  return out;
}

HistogramSnapshot RandomSnapshot(uint64_t u, size_t k, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(u);
  for (double& x : v) x = 100.0 * rng.NextDouble();
  v[1] = 900.0;
  v[u - 2] = 650.0;
  return HistogramSnapshot::FromCoefficients(u, TopKByMagnitude(AllCoeffs(v), k));
}

// The pre-snapshot WaveletHistogram estimators: a straight index-ascending
// sweep over every retained coefficient. The serve estimator must reproduce
// these bit for bit (off-path terms multiply a +-0.0 basis factor, which
// never perturbs an IEEE accumulator started at +0.0).
double NaivePoint(const HistogramSnapshot& snap, uint64_t x) {
  double est = 0.0;
  for (const WCoeff& c : snap.Coefficients()) {
    est += c.value * BasisValue(c.index, x, snap.domain_size());
  }
  return est;
}

double NaiveRange(const HistogramSnapshot& snap, uint64_t lo, uint64_t hi) {
  double est = 0.0;
  for (const WCoeff& c : snap.Coefficients()) {
    est += c.value * BasisRangeSum(c.index, lo, hi, snap.domain_size());
  }
  return est;
}

// The old inline SSE formula: start from "drop everything" (total energy),
// then for each kept coefficient, in index-ascending order, swap w^2 for
// (w - what)^2. The serve estimator promises this exact accumulation order.
double NaiveSse(const HistogramSnapshot& snap,
                const std::vector<WCoeff>& truth) {
  std::unordered_map<uint64_t, double> by_index;
  double sse = 0.0;
  for (const WCoeff& t : truth) {
    by_index.emplace(t.index, t.value);
    sse += t.value * t.value;
  }
  for (const WCoeff& c : snap.Coefficients()) {
    auto it = by_index.find(c.index);
    double w = it == by_index.end() ? 0.0 : it->second;
    sse -= w * w;
    double d = w - c.value;
    sse += d * d;
  }
  return sse;
}

TEST(ServeEstimatorTest, PointEstimateBitIdenticalToNaiveSweep) {
  for (uint64_t seed : {1u, 7u, 19u}) {
    HistogramSnapshot snap = RandomSnapshot(256, 24, seed);
    for (uint64_t x = 0; x < snap.domain_size(); ++x) {
      ASSERT_EQ(Bits(PointEstimate(snap, x)), Bits(NaivePoint(snap, x)))
          << "seed=" << seed << " x=" << x;
    }
  }
}

TEST(ServeEstimatorTest, RangeSumBitIdenticalToNaiveSweep) {
  HistogramSnapshot snap = RandomSnapshot(128, 17, 23);
  const uint64_t u = snap.domain_size();
  for (uint64_t lo = 0; lo <= u; lo += 5) {
    for (uint64_t hi = lo; hi <= u; hi += 7) {
      ASSERT_EQ(Bits(RangeSum(snap, lo, hi)), Bits(NaiveRange(snap, lo, hi)))
          << "lo=" << lo << " hi=" << hi;
    }
  }
  // Degenerate and full ranges.
  EXPECT_EQ(Bits(RangeSum(snap, 0, 0)), Bits(NaiveRange(snap, 0, 0)));
  EXPECT_EQ(Bits(RangeSum(snap, 0, u)), Bits(NaiveRange(snap, 0, u)));
  EXPECT_EQ(Bits(RangeSum(snap, u, u)), Bits(NaiveRange(snap, u, u)));
}

TEST(ServeEstimatorTest, SseBitIdenticalToInlineFormula) {
  Rng rng(77);
  std::vector<double> v(64);
  for (double& x : v) x = 50.0 * rng.NextDouble();
  std::vector<WCoeff> truth = AllCoeffs(v);
  for (size_t k : {0ul, 1ul, 5ul, 16ul, truth.size()}) {
    HistogramSnapshot snap =
        HistogramSnapshot::FromCoefficients(64, TopKByMagnitude(truth, k));
    EXPECT_EQ(Bits(SseAgainstTrueCoefficients(snap, truth)),
              Bits(NaiveSse(snap, truth)))
        << "k=" << k;
  }
}

TEST(ServeEstimatorTest, ReconstructMatchesPointEstimates) {
  HistogramSnapshot snap = RandomSnapshot(64, 12, 5);
  std::vector<double> recon = Reconstruct(snap);
  ASSERT_EQ(recon.size(), snap.domain_size());
  for (uint64_t x = 0; x < snap.domain_size(); ++x) {
    EXPECT_NEAR(recon[x], PointEstimate(snap, x), 1e-9);
  }
}

TEST(ServeEstimatorTest, EmptySnapshotEstimatesZero) {
  HistogramSnapshot empty;
  EXPECT_EQ(PointEstimate(empty, 0), 0.0);
  EXPECT_EQ(RangeSum(empty, 0, 1), 0.0);
}

// Range-sum consistency across the full algorithm matrix: for every one of
// the seven build paths, serving RangeSum from the snapshot must agree with
// brute-force partial sums of the snapshot's own reconstruction.
TEST(ServeEstimatorTest, RangeSumConsistentForAllSevenAlgorithms) {
  ZipfDatasetOptions data_opts;
  data_opts.num_records = 20000;
  data_opts.domain_size = 1024;
  data_opts.num_splits = 8;
  data_opts.seed = 11;
  ZipfDataset dataset(data_opts);

  BuildOptions options;
  options.k = 24;
  options.seed = 11;

  const AlgorithmKind kinds[] = {
      AlgorithmKind::kSendV,     AlgorithmKind::kSendCoef,
      AlgorithmKind::kHWTopk,    AlgorithmKind::kBasicS,
      AlgorithmKind::kImprovedS, AlgorithmKind::kTwoLevelS,
      AlgorithmKind::kSendSketch,
  };
  for (AlgorithmKind kind : kinds) {
    auto result = BuildWaveletHistogram(dataset, kind, options);
    ASSERT_TRUE(result.ok())
        << AlgorithmName(kind) << ": " << result.status().ToString();
    HistogramSnapshot snap = result->ToSnapshot();
    std::vector<double> recon = Reconstruct(snap);
    std::vector<double> prefix(recon.size() + 1, 0.0);
    std::partial_sum(recon.begin(), recon.end(), prefix.begin() + 1);
    const uint64_t u = snap.domain_size();
    for (uint64_t lo = 0; lo < u; lo += 111) {
      for (uint64_t hi = lo; hi <= u; hi += 97) {
        double brute = prefix[hi] - prefix[lo];
        EXPECT_NEAR(RangeSum(snap, lo, hi), brute, 1e-6 * (1.0 + std::abs(brute)))
            << AlgorithmName(kind) << " lo=" << lo << " hi=" << hi;
      }
    }
    for (uint64_t x = 0; x < u; x += 113) {
      EXPECT_NEAR(PointEstimate(snap, x), recon[x], 1e-9)
          << AlgorithmName(kind) << " x=" << x;
    }
  }
}

}  // namespace
}  // namespace wavemr
