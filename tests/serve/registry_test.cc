#include "serve/registry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/snapshot.h"

namespace wavemr {
namespace {

// A snapshot whose every field encodes `tag`, so readers can detect torn or
// stale state: each coefficient value is `tag` and the algorithm name is the
// decimal spelling of `tag`.
std::shared_ptr<const HistogramSnapshot> Tagged(uint64_t tag) {
  SnapshotMetadata meta;
  meta.algorithm = std::to_string(tag);
  meta.build_comm_bytes = tag;
  std::vector<WCoeff> coeffs;
  for (uint64_t i = 0; i < 4; ++i) {
    coeffs.push_back({i, static_cast<double>(tag)});
  }
  return std::make_shared<const HistogramSnapshot>(
      HistogramSnapshot::FromCoefficients(8, coeffs, meta));
}

TEST(SnapshotRegistryTest, EmptyRegistryYieldsFalsyGuard) {
  SnapshotRegistry registry;
  EXPECT_EQ(registry.current_version(), 0u);
  SnapshotRegistry::ReadGuard guard = registry.Acquire();
  EXPECT_FALSE(guard);
  EXPECT_EQ(guard.get(), nullptr);
}

TEST(SnapshotRegistryTest, PublishThenAcquire) {
  SnapshotRegistry registry;
  EXPECT_EQ(registry.Publish(Tagged(1)), 1u);
  EXPECT_EQ(registry.current_version(), 1u);
  auto guard = registry.Acquire();
  ASSERT_TRUE(guard);
  EXPECT_EQ(guard.version(), 1u);
  EXPECT_EQ(guard->metadata().algorithm, "1");
  EXPECT_EQ(registry.Publish(Tagged(2)), 2u);
  // The old guard keeps its snapshot alive and unchanged.
  EXPECT_EQ(guard->metadata().algorithm, "1");
  auto fresh = registry.Acquire();
  EXPECT_EQ(fresh.version(), 2u);
  EXPECT_EQ(fresh->metadata().algorithm, "2");
}

TEST(SnapshotRegistryTest, NumSlotsRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SnapshotRegistry(3).num_slots(), 4u);
  EXPECT_EQ(SnapshotRegistry(8).num_slots(), 8u);
  EXPECT_EQ(SnapshotRegistry(0).num_slots(), 2u);
  EXPECT_EQ(SnapshotRegistry(1).num_slots(), 2u);
}

TEST(SnapshotRegistryTest, PublisherWaitsForPinnedSlotToDrain) {
  // With 2 slots only one version may stay pinned: publishing v3 reuses v1's
  // slot and must spin until v1's guard is released.
  SnapshotRegistry registry(2);
  registry.Publish(Tagged(1));
  auto guard = registry.Acquire();
  ASSERT_EQ(guard.version(), 1u);

  std::atomic<bool> done{false};
  std::thread writer([&] {
    registry.Publish(Tagged(2));  // v1's slot still pinned, but v2 uses the other
    registry.Publish(Tagged(3));  // reuses v1's slot -> blocks on the guard
    done.store(true);
  });

  // Give the writer ample time to reach the blocked publish.
  for (int i = 0; i < 50 && registry.current_version() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(registry.current_version(), 2u);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(done.load());

  guard.Release();
  writer.join();
  EXPECT_TRUE(done.load());
  EXPECT_EQ(registry.current_version(), 3u);
  EXPECT_EQ(registry.Acquire()->metadata().algorithm, "3");
}

TEST(SnapshotRegistryTest, SwapUnderLoadNeverServesTornState) {
  SnapshotRegistry registry(4);
  registry.Publish(Tagged(0));

  constexpr int kReaders = 4;
  constexpr int kWriters = 2;
  constexpr int kPublishesPerWriter = 200;

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> threads;

  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      uint64_t last_version = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        auto guard = registry.Acquire();
        ASSERT_TRUE(guard);
        // Versions observed by one reader never go backwards.
        ASSERT_GE(guard.version(), last_version);
        last_version = guard.version();
        // Every field of the snapshot must agree on a single tag.
        const uint64_t tag = guard->metadata().build_comm_bytes;
        ASSERT_EQ(guard->metadata().algorithm, std::to_string(tag));
        ASSERT_EQ(guard->num_terms(), 4u);
        for (double v : guard->values()) {
          ASSERT_EQ(v, static_cast<double>(tag));
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::atomic<uint64_t> next_tag{1};
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPublishesPerWriter; ++i) {
        registry.Publish(Tagged(next_tag.fetch_add(1)));
      }
    });
  }

  // Join writers (the last kWriters threads), then stop readers.
  for (int w = 0; w < kWriters; ++w) threads[kReaders + w].join();
  stop.store(true);
  for (int r = 0; r < kReaders; ++r) threads[r].join();

  EXPECT_EQ(registry.current_version(),
            1u + kWriters * kPublishesPerWriter);
  EXPECT_GT(reads.load(), 0u);
}

TEST(SnapshotRegistryTest, MovedFromGuardReleasesOnce) {
  SnapshotRegistry registry(2);
  registry.Publish(Tagged(7));
  {
    auto a = registry.Acquire();
    auto b = std::move(a);
    EXPECT_TRUE(b);
    EXPECT_EQ(b->metadata().algorithm, "7");
  }  // Both destructors run; only b's releases the pin.
  // If the pin were double-released the slot count would underflow and the
  // next publishes would spin forever; cycling all slots proves it did not.
  registry.Publish(Tagged(8));
  registry.Publish(Tagged(9));
  EXPECT_EQ(registry.Acquire()->metadata().algorithm, "9");
}

}  // namespace
}  // namespace wavemr
