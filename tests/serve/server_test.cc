#include "serve/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <memory>
#include <thread>
#include <vector>

#include "core/rng.h"
#include "serve/client.h"
#include "serve/estimator.h"
#include "serve/protocol.h"
#include "serve/snapshot.h"
#include "wavelet/haar.h"
#include "wavelet/topk.h"

namespace wavemr {
namespace {

uint64_t Bits(double d) { return std::bit_cast<uint64_t>(d); }

std::shared_ptr<const HistogramSnapshot> MakeSnapshot(uint64_t u, size_t k,
                                                      uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(u);
  for (double& x : v) x = 100.0 * rng.NextDouble();
  v[2] = 800.0;
  std::vector<double> w = ForwardHaar(v);
  std::vector<WCoeff> coeffs;
  for (uint64_t i = 0; i < u; ++i) {
    if (w[i] != 0.0) coeffs.push_back({i, w[i]});
  }
  SnapshotMetadata meta;
  meta.algorithm = "test-fixture";
  return std::make_shared<const HistogramSnapshot>(
      HistogramSnapshot::FromCoefficients(u, TopKByMagnitude(coeffs, k), meta));
}

class QueryServerTest : public ::testing::Test {
 protected:
  // Starts a server on an ephemeral port and connects one client.
  void StartAndConnect(QueryServer::RebuildFn rebuild = nullptr) {
    ServerOptions options;
    options.port = 0;
    options.workers = 2;
    server_ = std::make_unique<QueryServer>(&registry_, options,
                                            std::move(rebuild));
    Status started = server_->Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
    ASSERT_GT(server_->port(), 0);
    Status connected = client_.Connect("127.0.0.1", server_->port());
    ASSERT_TRUE(connected.ok()) << connected.ToString();
  }

  SnapshotRegistry registry_;
  std::unique_ptr<QueryServer> server_;
  ServeClient client_;
};

TEST_F(QueryServerTest, ServedEstimatesBitIdenticalToLocal) {
  auto snap = MakeSnapshot(64, 12, 3);
  registry_.Publish(snap);
  StartAndConnect();

  for (uint64_t x = 0; x < snap->domain_size(); x += 5) {
    auto r = client_.Point(x);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(Bits(r->estimate), Bits(PointEstimate(*snap, x))) << "x=" << x;
    EXPECT_EQ(r->version, 1u);
  }
  for (uint64_t lo : {0ul, 7ul, 31ul}) {
    auto r = client_.Range(lo, 64);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(Bits(r->estimate), Bits(RangeSum(*snap, lo, 64)));
  }
  auto top = client_.TopK(5);
  ASSERT_TRUE(top.ok()) << top.status().ToString();
  std::vector<WCoeff> want = snap->TopCoefficients(5);
  ASSERT_EQ(top->coefficients.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(top->coefficients[i], want[i]);
  }
}

TEST_F(QueryServerTest, StatsReportSnapshotAndCounters) {
  registry_.Publish(MakeSnapshot(32, 8, 9));
  StartAndConnect();
  ASSERT_TRUE(client_.Point(0).ok());
  auto stats = client_.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->version, 1u);
  EXPECT_EQ(stats->snapshots_published, 1u);
  EXPECT_EQ(stats->domain_size, 32u);
  EXPECT_EQ(stats->num_terms, 8u);
  EXPECT_EQ(stats->algorithm, "test-fixture");
  // The stats request itself is counted, so >= the point query + this one.
  EXPECT_GE(stats->queries_served, 2u);
}

TEST_F(QueryServerTest, ErrorsComeBackAsStatuses) {
  registry_.Publish(MakeSnapshot(16, 4, 1));
  StartAndConnect();
  auto oob = client_.Point(16);
  ASSERT_FALSE(oob.ok());
  EXPECT_EQ(oob.status().code(), StatusCode::kOutOfRange);
  auto bad_range = client_.Range(9, 3);
  ASSERT_FALSE(bad_range.ok());
  EXPECT_EQ(bad_range.status().code(), StatusCode::kOutOfRange);
  auto no_rebuild = client_.Rebuild();
  ASSERT_FALSE(no_rebuild.ok());
  EXPECT_EQ(no_rebuild.status().code(), StatusCode::kUnimplemented);
  // The connection survives error responses.
  EXPECT_TRUE(client_.Point(0).ok());
}

TEST_F(QueryServerTest, QueriesBeforeFirstPublishFailCleanly) {
  StartAndConnect();
  auto r = client_.Point(0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  // Publishing makes the same connection start answering.
  registry_.Publish(MakeSnapshot(16, 4, 2));
  EXPECT_TRUE(client_.Point(0).ok());
}

TEST_F(QueryServerTest, RebuildPublishesNewVersion) {
  registry_.Publish(MakeSnapshot(32, 8, 1));
  std::atomic<uint64_t> calls{0};
  StartAndConnect([&](uint64_t count)
                      -> StatusOr<std::shared_ptr<const HistogramSnapshot>> {
    calls.store(count);
    return MakeSnapshot(32, 8, 100 + count);
  });
  auto v = client_.Rebuild();
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(*v, 2u);
  EXPECT_EQ(calls.load(), 1u);
  EXPECT_EQ(registry_.current_version(), 2u);
  auto stats = client_.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->version, 2u);
  EXPECT_EQ(stats->snapshots_published, 2u);
}

TEST_F(QueryServerTest, ManyRequestsOnOneConnectionAnswerInOrder) {
  auto snap = MakeSnapshot(128, 20, 7);
  registry_.Publish(snap);
  StartAndConnect();
  // The blocking client already enforces request/response pairing; what this
  // checks is that a long run of back-to-back frames never desynchronizes.
  for (int i = 0; i < 500; ++i) {
    uint64_t x = static_cast<uint64_t>(i) % snap->domain_size();
    auto r = client_.Point(x);
    ASSERT_TRUE(r.ok()) << "i=" << i << ": " << r.status().ToString();
    ASSERT_EQ(Bits(r->estimate), Bits(PointEstimate(*snap, x))) << "i=" << i;
  }
  EXPECT_GE(server_->queries_served(), 500u);
}

TEST_F(QueryServerTest, ConcurrentClientsWithRebuildsStayConsistent) {
  registry_.Publish(MakeSnapshot(64, 12, 1));
  StartAndConnect([&](uint64_t count)
                      -> StatusOr<std::shared_ptr<const HistogramSnapshot>> {
    return MakeSnapshot(64, 12, 1000 + count);
  });
  const int port = server_->port();

  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 100;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      ServeClient client;
      if (!client.Connect("127.0.0.1", port).ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kQueriesPerClient; ++i) {
        if (i % 25 == 0 && c == 0) {
          if (!client.Rebuild().ok()) failures.fetch_add(1);
          continue;
        }
        auto r = client.Point(static_cast<uint64_t>(i) % 64);
        if (!r.ok() || r->version == 0) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(server_->queries_served(),
            static_cast<uint64_t>(kClients * kQueriesPerClient));
}

TEST_F(QueryServerTest, StopIsIdempotentAndDropsClients) {
  registry_.Publish(MakeSnapshot(16, 4, 5));
  StartAndConnect();
  ASSERT_TRUE(client_.Point(1).ok());
  server_->Stop();
  server_->Stop();
  auto r = client_.Point(1);
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace wavemr
