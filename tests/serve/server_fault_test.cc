// Robustness tests for the query server: load shedding at the connection
// cap, idle-connection eviction, graceful drain on shutdown, and send-path
// fault injection -- the serve half of the failpoint-hardening work.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/failpoint.h"
#include "core/rng.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "wavelet/haar.h"
#include "wavelet/topk.h"

namespace wavemr {
namespace {

std::shared_ptr<const HistogramSnapshot> MakeSnapshot(uint64_t u, size_t k,
                                                      uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(u);
  for (double& x : v) x = 100.0 * rng.NextDouble();
  std::vector<double> w = ForwardHaar(v);
  std::vector<WCoeff> coeffs;
  for (uint64_t i = 0; i < u; ++i) {
    if (w[i] != 0.0) coeffs.push_back({i, w[i]});
  }
  SnapshotMetadata meta;
  meta.algorithm = "fault-fixture";
  return std::make_shared<const HistogramSnapshot>(
      HistogramSnapshot::FromCoefficients(u, TopKByMagnitude(coeffs, k), meta));
}

class ServerFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::DisarmAll(); }

  void Start(ServerOptions options,
             QueryServer::RebuildFn rebuild = nullptr) {
    registry_.Publish(MakeSnapshot(64, 12, 3));
    options.port = 0;
    server_ = std::make_unique<QueryServer>(&registry_, options,
                                            std::move(rebuild));
    Status started = server_->Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
  }

  /// Polls `pred` for up to ~3 s (the reactor sweeps asynchronously).
  static bool Eventually(const std::function<bool()>& pred) {
    for (int i = 0; i < 300; ++i) {
      if (pred()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return pred();
  }

  SnapshotRegistry registry_;
  std::unique_ptr<QueryServer> server_;
};

TEST_F(ServerFaultTest, ConnectionCapShedsWithUnavailableFrame) {
  ServerOptions options;
  options.workers = 2;
  options.max_connections = 2;
  Start(options);

  ServeClient c1, c2;
  ASSERT_TRUE(c1.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(c2.Connect("127.0.0.1", server_->port()).ok());
  // Make sure both connections are registered with the reactor before the
  // third arrives (Connect returns before the server's accept runs).
  ASSERT_TRUE(c1.Point(1).ok());
  ASSERT_TRUE(c2.Point(2).ok());

  ServeClient c3;
  ASSERT_TRUE(c3.Connect("127.0.0.1", server_->port()).ok());
  auto r = c3.Point(3);
  ASSERT_FALSE(r.ok()) << "third client must be shed at max_connections=2";
  // The reject frame carries kUnavailable; a client that lost the race to
  // read it before the close sees a connection error instead, but the shed
  // counter always ticks.
  if (r.status().code() != StatusCode::kIOError) {
    EXPECT_EQ(r.status().code(), StatusCode::kUnavailable)
        << r.status().ToString();
  }
  EXPECT_TRUE(Eventually([&] { return server_->connections_shed() == 1; }));

  // Capacity frees up when a held connection goes away.
  c1.Close();
  EXPECT_TRUE(Eventually([&] {
    ServeClient probe;
    return probe.Connect("127.0.0.1", server_->port()).ok() &&
           probe.Point(4).ok();
  }));

  // The shed count is visible over the wire in kStats.
  auto stats = c2.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats->connections_shed, 1u);
}

TEST_F(ServerFaultTest, IdleConnectionsAreEvicted) {
  ServerOptions options;
  options.workers = 2;
  options.idle_timeout_ms = 100;
  Start(options);

  ServeClient idle, busy;
  ASSERT_TRUE(idle.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(busy.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(idle.Point(0).ok());

  // Keep one connection active while the other goes quiet.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(3);
  bool evicted = false;
  while (std::chrono::steady_clock::now() < deadline) {
    ASSERT_TRUE(busy.Point(1).ok()) << "active connection must survive";
    if (server_->idle_disconnects() >= 1) {
      evicted = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(evicted) << "idle connection was never evicted";
  EXPECT_FALSE(idle.Point(0).ok()) << "evicted connection still answered";

  auto stats = busy.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->idle_disconnects, 1u);
}

TEST_F(ServerFaultTest, StopDrainsInFlightQueries) {
  ServerOptions options;
  options.workers = 2;
  options.drain_timeout_ms = 5000;
  std::atomic<bool> rebuild_started{false};
  Start(options, [&](uint64_t count)
                     -> StatusOr<std::shared_ptr<const HistogramSnapshot>> {
    rebuild_started.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    return MakeSnapshot(64, 12, 100 + count);
  });

  ServeClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  StatusOr<uint64_t> result = Status::Internal("never ran");
  std::thread querier([&] { result = client.Rebuild(); });
  ASSERT_TRUE(Eventually([&] { return rebuild_started.load(); }));

  server_->Stop();  // must wait for the in-flight rebuild's response
  querier.join();
  ASSERT_TRUE(result.ok())
      << "drain dropped an in-flight response: " << result.status().ToString();
  EXPECT_EQ(*result, 2u);

  // After the drain the listener is gone.
  ServeClient late;
  Status reconnect = late.Connect("127.0.0.1", server_->port());
  if (reconnect.ok()) EXPECT_FALSE(late.Point(0).ok());
}

TEST_F(ServerFaultTest, DrainDeadlineBoundsSlowQueries) {
  ServerOptions options;
  options.workers = 2;
  options.drain_timeout_ms = 50;
  Start(options, [&](uint64_t count)
                     -> StatusOr<std::shared_ptr<const HistogramSnapshot>> {
    std::this_thread::sleep_for(std::chrono::seconds(2));
    return MakeSnapshot(64, 12, 100 + count);
  });

  ServeClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  StatusOr<uint64_t> result = Status::Internal("never ran");
  std::thread querier([&] { result = client.Rebuild(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  const auto t0 = std::chrono::steady_clock::now();
  server_->Stop();
  const auto stop_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  querier.join();
  // Stop still joins the worker pool (so ~2 s total here), but the reactor's
  // drain phase must have given up at its 50 ms deadline rather than waiting
  // on the stuck connection forever.
  EXPECT_LT(stop_ms, 10000);
  EXPECT_FALSE(result.ok()) << "response after hard teardown";
}

TEST_F(ServerFaultTest, ManyClientsSurviveStopWithoutCrash) {
  ServerOptions options;
  options.workers = 4;
  Start(options);
  const int port = server_->port();

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int c = 0; c < 4; ++c) {
    threads.emplace_back([&, c] {
      ServeClient client;
      if (!client.Connect("127.0.0.1", port).ok()) return;
      uint64_t x = static_cast<uint64_t>(c);
      while (!stop.load()) {
        if (!client.Point(x % 64).ok()) return;  // server went away: fine
        ++x;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  server_->Stop();  // concurrent with live traffic
  stop.store(true);
  for (auto& t : threads) t.join();
  // Reaching here without a crash or hang is the assertion; the drain must
  // also have answered a nonzero number of queries.
  EXPECT_GT(server_->queries_served(), 0u);
}

TEST_F(ServerFaultTest, SendFailpointKillsOneConnectionNotTheServer) {
  ServerOptions options;
  options.workers = 2;
  Start(options);

  ServeClient victim;
  ASSERT_TRUE(victim.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(victim.Point(1).ok());

  ASSERT_TRUE(Failpoints::ArmFromSpec("serve.send=once:ECONNRESET").ok());
  auto r = victim.Point(2);
  EXPECT_FALSE(r.ok()) << "injected ECONNRESET must drop the response";
  EXPECT_TRUE(Eventually([&] { return Failpoints::TotalTrips() >= 1; }));

  // The server keeps serving fresh connections.
  ServeClient survivor;
  ASSERT_TRUE(survivor.Connect("127.0.0.1", server_->port()).ok());
  EXPECT_TRUE(survivor.Point(3).ok());
}

TEST_F(ServerFaultTest, AbruptClientDisconnectDoesNotKillServer) {
  ServerOptions options;
  options.workers = 2;
  Start(options);

  // Clients that vanish right after writing a request exercise the EPIPE /
  // ECONNRESET paths on the server's send side (MSG_NOSIGNAL keeps SIGPIPE
  // away); the server must shrug all of them off.
  for (int i = 0; i < 20; ++i) {
    ServeClient hit_and_run;
    ASSERT_TRUE(hit_and_run.Connect("127.0.0.1", server_->port()).ok());
    (void)hit_and_run.Point(static_cast<uint64_t>(i) % 64);
    hit_and_run.Close();
  }
  ServeClient steady;
  ASSERT_TRUE(steady.Connect("127.0.0.1", server_->port()).ok());
  EXPECT_TRUE(steady.Point(0).ok());
}

}  // namespace
}  // namespace wavemr
