#include "wavelet/haar.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <span>
#include <vector>

#include "core/bitops.h"
#include "core/rng.h"
#include "core/simd.h"
#include "wavelet/coefficient.h"

namespace wavemr {
namespace {

constexpr double kTol = 1e-9;

std::vector<double> RandomSignal(uint64_t u, uint64_t seed, double scale = 100.0) {
  Rng rng(seed);
  std::vector<double> v(u);
  for (double& x : v) x = (rng.NextDouble() - 0.5) * scale;
  return v;
}

TEST(HaarTest, PaperFigure1Example) {
  // Figure 1 of the paper: v = [3,5,10,8,2,2,10,14]; tree values
  // [6.75, 0.25, 2.5, 5, 1, -1, 0, 2], normalized by sqrt(u / 2^level).
  std::vector<double> v = {3, 5, 10, 8, 2, 2, 10, 14};
  std::vector<double> w = ForwardHaar(v);
  double s8 = std::sqrt(8.0), s2 = std::sqrt(2.0);
  EXPECT_NEAR(w[0], 6.75 * s8, kTol);   // total average
  EXPECT_NEAR(w[1], 0.25 * s8, kTol);   // w2
  EXPECT_NEAR(w[2], 2.5 * 2.0, kTol);   // w3, scale sqrt(8/2)=2
  EXPECT_NEAR(w[3], 5.0 * 2.0, kTol);   // w4
  EXPECT_NEAR(w[4], 1.0 * s2, kTol);    // w5
  EXPECT_NEAR(w[5], -1.0 * s2, kTol);   // w6
  EXPECT_NEAR(w[6], 0.0, kTol);         // w7
  EXPECT_NEAR(w[7], 2.0 * s2, kTol);    // w8
}

TEST(HaarTest, MatchesBasisVectorDefinition) {
  // w_i must equal <v, psi_i> with psi from coefficient.h -- the transform
  // and the basis-side definition (paper Figure 2) must agree exactly.
  const uint64_t u = 32;
  std::vector<double> v = RandomSignal(u, 17);
  std::vector<double> w = ForwardHaar(v);
  for (uint64_t i = 0; i < u; ++i) {
    double dot = 0.0;
    for (uint64_t x = 0; x < u; ++x) dot += v[x] * BasisValue(i, x, u);
    EXPECT_NEAR(w[i], dot, 1e-8) << "coefficient " << i;
  }
}

class HaarRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HaarRoundTripTest, InverseRecoversSignal) {
  const uint64_t u = GetParam();
  std::vector<double> v = RandomSignal(u, 7 + u);
  std::vector<double> back = InverseHaar(ForwardHaar(v));
  ASSERT_EQ(back.size(), v.size());
  for (uint64_t i = 0; i < u; ++i) EXPECT_NEAR(back[i], v[i], 1e-7);
}

TEST_P(HaarRoundTripTest, ParsevalEnergyPreserved) {
  const uint64_t u = GetParam();
  std::vector<double> v = RandomSignal(u, 31 + u);
  std::vector<double> w = ForwardHaar(v);
  auto energy = [](const std::vector<double>& a) {
    return std::inner_product(a.begin(), a.end(), a.begin(), 0.0);
  };
  EXPECT_NEAR(energy(v), energy(w), 1e-6 * (1.0 + energy(v)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, HaarRoundTripTest,
                         ::testing::Values(1u, 2u, 4u, 8u, 64u, 256u, 1024u));

TEST(HaarTest, SizeOneIsIdentity) {
  std::vector<double> v = {5.5};
  EXPECT_NEAR(ForwardHaar(v)[0], 5.5, kTol);
  EXPECT_NEAR(InverseHaar(v)[0], 5.5, kTol);
}

// The original in-place butterfly, kept verbatim as the reference for the
// vectorizable ping-pong restructuring in haar.cc: the new form must be a
// pure loop transformation, so every coefficient matches bit for bit.
std::vector<double> ForwardHaarScalarReference(std::span<const double> v) {
  const uint64_t u = v.size();
  std::vector<double> coeffs(u, 0.0);
  std::vector<double> sums(v.begin(), v.end());
  const uint32_t levels = Log2Floor(u);
  uint64_t size = u;
  for (uint32_t t = 0; t < levels; ++t) {
    uint32_t j = levels - t - 1;
    double norm = 1.0 / std::sqrt(static_cast<double>(u >> j));
    uint64_t half = size / 2;
    for (uint64_t k = 0; k < half; ++k) {
      double left = sums[2 * k];
      double right = sums[2 * k + 1];
      coeffs[(uint64_t{1} << j) + k] = (right - left) * norm;
      sums[k] = left + right;
    }
    size = half;
  }
  coeffs[0] = sums[0] / std::sqrt(static_cast<double>(u));
  return coeffs;
}

class HaarBitIdentityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HaarBitIdentityTest, RestructuredPassMatchesScalarBitwise) {
  const uint64_t u = GetParam();
  std::vector<double> v = RandomSignal(u, 1000 + u);
  std::vector<double> want = ForwardHaarScalarReference(v);
  std::vector<double> got = ForwardHaar(v);
  ASSERT_EQ(want.size(), got.size());
  for (uint64_t i = 0; i < u; ++i) {
    EXPECT_EQ(want[i], got[i]) << "coefficient " << i;  // exact, not NEAR
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, HaarBitIdentityTest,
                         ::testing::Values(1u, 2u, 4u, 16u, 128u, 1024u, 8192u));

TEST_P(HaarBitIdentityTest, SimdTiersMatchScalarTierBitwise) {
  // ForwardHaar's butterfly runs through the dispatched SIMD kernel
  // (core/simd.h); forcing the scalar table and the best available table
  // must give the same coefficients bit for bit, and both must still equal
  // the in-place scalar reference.
  const uint64_t u = GetParam();
  std::vector<double> v = RandomSignal(u, 2000 + u);
  std::vector<double> want = ForwardHaarScalarReference(v);
  OverrideSimdTierForTest(SimdTier::kScalar);
  std::vector<double> scalar = ForwardHaar(v);
  OverrideSimdTierForTest(BestSimdTier());
  std::vector<double> best = ForwardHaar(v);
  OverrideSimdTierForTest(ActiveSimdTier());
  for (uint64_t i = 0; i < u; ++i) {
    ASSERT_EQ(scalar[i], want[i]) << "coefficient " << i;
    ASSERT_EQ(best[i], want[i])
        << "coefficient " << i << " tier=" << SimdTierName(BestSimdTier());
  }
}

TEST(HaarTest, LinearityOfTransform) {
  const uint64_t u = 64;
  std::vector<double> a = RandomSignal(u, 1), b = RandomSignal(u, 2), sum(u);
  for (uint64_t i = 0; i < u; ++i) sum[i] = 2.0 * a[i] - 3.0 * b[i];
  std::vector<double> wa = ForwardHaar(a), wb = ForwardHaar(b), ws = ForwardHaar(sum);
  for (uint64_t i = 0; i < u; ++i) {
    EXPECT_NEAR(ws[i], 2.0 * wa[i] - 3.0 * wb[i], 1e-8);
  }
}

TEST(HaarTest, PadToPow2) {
  std::vector<double> v = {1, 2, 3};
  std::vector<double> padded = PadToPow2(v);
  ASSERT_EQ(padded.size(), 4u);
  EXPECT_EQ(padded[3], 0.0);
  EXPECT_EQ(PadToPow2(std::vector<double>{}).size(), 1u);
  EXPECT_EQ(PadToPow2(std::vector<double>(8, 1.0)).size(), 8u);
}

TEST(CoefficientTest, LevelsAndSupports) {
  const uint64_t u = 16;
  EXPECT_EQ(CoefficientLevel(0), 0u);
  EXPECT_EQ(CoefficientLevel(1), 0u);
  EXPECT_EQ(CoefficientLevel(2), 1u);
  EXPECT_EQ(CoefficientLevel(3), 1u);
  EXPECT_EQ(CoefficientLevel(4), 2u);
  EXPECT_EQ(CoefficientLevel(15), 3u);

  CoeffSupport s = CoefficientSupport(0, u);
  EXPECT_EQ(s.lo, 0u);
  EXPECT_EQ(s.hi, u);
  s = CoefficientSupport(1, u);  // level 0 detail covers everything
  EXPECT_EQ(s.lo, 0u);
  EXPECT_EQ(s.hi, u);
  s = CoefficientSupport(3, u);  // level 1, block 1: [8, 16)
  EXPECT_EQ(s.lo, 8u);
  EXPECT_EQ(s.hi, 16u);
}

TEST(CoefficientTest, PathIndicesMatchNonzeroBasis) {
  const uint64_t u = 64;
  for (uint64_t x : {0ull, 13ull, 31ull, 63ull}) {
    std::vector<uint64_t> path = PathIndices(x, u);
    EXPECT_EQ(path.size(), Log2Floor(u) + 1);
    // Exactly the path coefficients see x.
    std::set<uint64_t> in_path(path.begin(), path.end());
    for (uint64_t i = 0; i < u; ++i) {
      double b = BasisValue(i, x, u);
      EXPECT_EQ(b != 0.0, in_path.count(i) > 0) << "i=" << i << " x=" << x;
    }
  }
}

TEST(CoefficientTest, BasisRangeSumMatchesPointwise) {
  const uint64_t u = 32;
  for (uint64_t i : {0ull, 1ull, 3ull, 9ull, 31ull}) {
    for (uint64_t lo = 0; lo <= u; lo += 5) {
      for (uint64_t hi = lo; hi <= u; hi += 7) {
        double direct = 0.0;
        for (uint64_t x = lo; x < hi; ++x) direct += BasisValue(i, x, u);
        EXPECT_NEAR(BasisRangeSum(i, lo, hi, u), direct, 1e-9)
            << "i=" << i << " [" << lo << "," << hi << ")";
      }
    }
  }
}

}  // namespace
}  // namespace wavemr
