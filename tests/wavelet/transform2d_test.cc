#include "wavelet/transform2d.h"

#include <gtest/gtest.h>

#include <numeric>

#include "core/rng.h"

namespace wavemr {
namespace {

std::vector<double> RandomMatrix(uint64_t rows, uint64_t cols, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(rows * cols);
  for (double& x : v) x = (rng.NextDouble() - 0.5) * 20.0;
  return v;
}

struct Dims {
  uint64_t rows, cols;
};

class Haar2DTest : public ::testing::TestWithParam<Dims> {};

TEST_P(Haar2DTest, RoundTrips) {
  auto [rows, cols] = GetParam();
  std::vector<double> v = RandomMatrix(rows, cols, rows * 31 + cols);
  std::vector<double> back = InverseHaar2D(ForwardHaar2D(v, rows, cols), rows, cols);
  for (size_t i = 0; i < v.size(); ++i) EXPECT_NEAR(back[i], v[i], 1e-7);
}

TEST_P(Haar2DTest, ParsevalHolds) {
  auto [rows, cols] = GetParam();
  std::vector<double> v = RandomMatrix(rows, cols, rows * 7 + cols);
  std::vector<double> w = ForwardHaar2D(v, rows, cols);
  auto energy = [](const std::vector<double>& a) {
    return std::inner_product(a.begin(), a.end(), a.begin(), 0.0);
  };
  EXPECT_NEAR(energy(v), energy(w), 1e-6 * (1 + energy(v)));
}

INSTANTIATE_TEST_SUITE_P(Dims, Haar2DTest,
                         ::testing::Values(Dims{1, 1}, Dims{2, 2}, Dims{4, 8},
                                           Dims{16, 16}, Dims{32, 8}));

TEST(Haar2DTest, SparseMatchesDense) {
  const uint64_t rows = 16, cols = 32;
  Rng rng(5);
  std::vector<Cell2D> cells;
  std::vector<double> dense(rows * cols, 0.0);
  for (int i = 0; i < 20; ++i) {
    uint64_t x = rng.NextBounded(rows), y = rng.NextBounded(cols);
    double w = 1.0 + rng.NextBounded(9);
    cells.push_back({x, y, w});
    dense[x * cols + y] += w;
  }
  std::vector<double> expect = ForwardHaar2D(dense, rows, cols);
  auto got = SparseHaar2DMap(cells, rows, cols);
  for (uint64_t a = 0; a < rows; ++a) {
    for (uint64_t b = 0; b < cols; ++b) {
      uint64_t id = Coeff2DIndex(a, b, cols);
      double g = got.count(id) ? got.at(id) : 0.0;
      ASSERT_NEAR(g, expect[a * cols + b], 1e-8) << "(" << a << "," << b << ")";
    }
  }
}

TEST(Haar2DTest, TransformIsLinear) {
  // Linearity is what makes H-WTopk work unchanged in 2-D (Section 3).
  const uint64_t rows = 8, cols = 8;
  std::vector<double> a = RandomMatrix(rows, cols, 1);
  std::vector<double> b = RandomMatrix(rows, cols, 2);
  std::vector<double> sum(rows * cols);
  for (size_t i = 0; i < sum.size(); ++i) sum[i] = a[i] + b[i];
  std::vector<double> wa = ForwardHaar2D(a, rows, cols);
  std::vector<double> wb = ForwardHaar2D(b, rows, cols);
  std::vector<double> ws = ForwardHaar2D(sum, rows, cols);
  for (size_t i = 0; i < ws.size(); ++i) EXPECT_NEAR(ws[i], wa[i] + wb[i], 1e-9);
}

TEST(Haar2DTest, SparseEmptyIsEmpty) {
  EXPECT_TRUE(SparseHaar2D({}, 8, 8).empty());
}

}  // namespace
}  // namespace wavemr
