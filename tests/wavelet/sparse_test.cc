#include "wavelet/sparse.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "core/rng.h"
#include "core/simd.h"
#include "wavelet/haar.h"

namespace wavemr {
namespace {

struct SparseCase {
  uint64_t u;
  uint64_t nonzeros;
  uint64_t seed;
};

class SparseVsDenseTest : public ::testing::TestWithParam<SparseCase> {};

TEST_P(SparseVsDenseTest, SparseEqualsDense) {
  const SparseCase& c = GetParam();
  Rng rng(c.seed);
  std::unordered_map<uint64_t, double> entries;
  for (uint64_t i = 0; i < c.nonzeros; ++i) {
    entries[rng.NextBounded(c.u)] += 1.0 + rng.NextBounded(50);
  }
  SparseVector v(entries.begin(), entries.end());

  std::vector<double> dense(c.u, 0.0);
  for (const auto& [key, val] : entries) dense[key] = val;
  std::vector<double> expect = ForwardHaar(dense);

  std::vector<WCoeff> got = SparseHaar(v, c.u);
  std::unordered_map<uint64_t, double> got_map;
  for (const WCoeff& w : got) got_map[w.index] = w.value;

  for (uint64_t i = 0; i < c.u; ++i) {
    double g = got_map.count(i) ? got_map[i] : 0.0;
    ASSERT_NEAR(g, expect[i], 1e-8) << "coefficient " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SparseVsDenseTest,
    ::testing::Values(SparseCase{4, 1, 1}, SparseCase{8, 3, 2}, SparseCase{64, 10, 3},
                      SparseCase{256, 50, 4}, SparseCase{1024, 200, 5},
                      SparseCase{4096, 1, 6}, SparseCase{4096, 4096, 7}));

TEST(SparseHaarTest, OutputSortedAndBounded) {
  SparseVector v = {{5, 2.0}, {100, 1.0}, {900, 4.0}};
  std::vector<WCoeff> coeffs = SparseHaar(v, 1024);
  // At most |v| * (log2 u + 1) nonzero coefficients.
  EXPECT_LE(coeffs.size(), v.size() * (Log2Floor(1024) + 1));
  for (size_t i = 1; i < coeffs.size(); ++i) {
    EXPECT_LT(coeffs[i - 1].index, coeffs[i].index);
  }
}

TEST(SparseHaarTest, PointUpdateFanout) {
  EXPECT_EQ(PointUpdateFanout(1), 1u);
  EXPECT_EQ(PointUpdateFanout(2), 2u);
  EXPECT_EQ(PointUpdateFanout(1024), 11u);
}

TEST(SparseHaarTest, AccumulateIsAdditive) {
  const uint64_t u = 128;
  std::unordered_map<uint64_t, double> acc;
  AccumulatePointUpdate(10, 3.0, u, &acc);
  AccumulatePointUpdate(10, -3.0, u, &acc);
  for (const auto& [idx, val] : acc) EXPECT_NEAR(val, 0.0, 1e-12);
}

TEST(SparseHaarTest, EmptyInputYieldsNothing) {
  EXPECT_TRUE(SparseHaar({}, 64).empty());
}

TEST(SparseHaarTest, LevelMajorMatchesScalarPathBitwise) {
  // SparseHaar's level-major restructuring (hoisted sqrt, shift/mask block
  // math) must accumulate every coefficient in the same order as the
  // key-major scalar path, so the two agree exactly -- not just to within a
  // tolerance. SparseHaarMap/AccumulatePointUpdate is that scalar path.
  for (uint64_t seed : {11u, 12u, 13u}) {
    Rng rng(seed);
    const uint64_t u = 4096;
    SparseVector v;
    for (int i = 0; i < 500; ++i) {
      v.emplace_back(rng.NextBounded(u), (rng.NextDouble() - 0.5) * 100.0);
    }
    std::unordered_map<uint64_t, double> want = SparseHaarMap(v, u);
    std::vector<WCoeff> got = SparseHaar(v, u);
    std::unordered_map<uint64_t, double> got_map;
    for (const WCoeff& w : got) {
      EXPECT_NE(w.value, 0.0);
      got_map[w.index] = w.value;
    }
    for (const auto& [idx, val] : want) {
      if (val == 0.0) {
        EXPECT_EQ(got_map.count(idx), 0u) << "index " << idx;
      } else {
        ASSERT_EQ(got_map.count(idx), 1u) << "index " << idx;
        EXPECT_EQ(got_map[idx], val) << "index " << idx;  // exact
      }
    }
    EXPECT_LE(got_map.size(), want.size());
  }
}

TEST(SparseHaarTest, SimdTiersMatchScalarPathBitwise) {
  // The level pass runs through the dispatched SIMD kernel; forced-scalar
  // and best-tier transforms must agree bit for bit with each other and
  // with the key-major AccumulatePointUpdate path.
  Rng rng(77);
  const uint64_t u = 8192;
  SparseVector v;
  for (int i = 0; i < 700; ++i) {
    v.emplace_back(rng.NextBounded(u), (rng.NextDouble() - 0.5) * 50.0);
  }
  std::unordered_map<uint64_t, double> want = SparseHaarMap(v, u);
  OverrideSimdTierForTest(SimdTier::kScalar);
  std::vector<WCoeff> scalar = SparseHaar(v, u);
  OverrideSimdTierForTest(BestSimdTier());
  std::vector<WCoeff> best = SparseHaar(v, u);
  OverrideSimdTierForTest(ActiveSimdTier());
  ASSERT_EQ(scalar.size(), best.size());
  for (size_t i = 0; i < scalar.size(); ++i) {
    ASSERT_EQ(scalar[i].index, best[i].index);
    ASSERT_EQ(scalar[i].value, best[i].value)
        << "index " << scalar[i].index
        << " tier=" << SimdTierName(BestSimdTier());
    ASSERT_EQ(want.at(scalar[i].index), scalar[i].value);
  }
}

TEST(SparseHaarTest, NegativeWeightsSupported) {
  // Sampling estimators can produce non-integral, negative-ish corrections;
  // the transform must be linear over arbitrary weights.
  SparseVector v = {{3, -2.5}, {7, 0.25}};
  std::vector<double> dense(16, 0.0);
  dense[3] = -2.5;
  dense[7] = 0.25;
  std::vector<double> expect = ForwardHaar(dense);
  std::unordered_map<uint64_t, double> got;
  for (const WCoeff& w : SparseHaar(v, 16)) got[w.index] = w.value;
  for (uint64_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(got.count(i) ? got[i] : 0.0, expect[i], 1e-10);
  }
}

}  // namespace
}  // namespace wavemr
