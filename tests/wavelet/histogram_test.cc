#include "wavelet/histogram.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/rng.h"
#include "serve/estimator.h"
#include "serve/snapshot.h"
#include "wavelet/haar.h"
#include "wavelet/topk.h"

namespace wavemr {
namespace {

// Estimation moved to the serve layer; these suites freeze the histogram
// into a snapshot and query through serve/estimator.h.
HistogramSnapshot Snap(const WaveletHistogram& hist) {
  return HistogramSnapshot::FromHistogram(hist);
}

std::vector<double> SkewedSignal(uint64_t u, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(u, 0.0);
  for (uint64_t i = 0; i < u; ++i) {
    // A few large spikes over small noise: realistic for wavelet synopses.
    v[i] = rng.NextDouble();
  }
  v[3] = 500;
  v[u / 2] = 300;
  v[u - 1] = 200;
  return v;
}

std::vector<WCoeff> AllCoeffs(const std::vector<double>& v) {
  std::vector<double> w = ForwardHaar(v);
  std::vector<WCoeff> out;
  for (uint64_t i = 0; i < w.size(); ++i) {
    if (w[i] != 0.0) out.push_back({i, w[i]});
  }
  return out;
}

TEST(WaveletHistogramTest, FullCoefficientsReconstructExactly) {
  const uint64_t u = 64;
  std::vector<double> v = SkewedSignal(u, 3);
  WaveletHistogram hist(u, AllCoeffs(v));
  std::vector<double> back = hist.Reconstruct();
  for (uint64_t i = 0; i < u; ++i) EXPECT_NEAR(back[i], v[i], 1e-8);
  HistogramSnapshot snap = Snap(hist);
  for (uint64_t i = 0; i < u; ++i) EXPECT_NEAR(PointEstimate(snap, i), v[i], 1e-8);
}

TEST(WaveletHistogramTest, RangeSumMatchesReconstruction) {
  const uint64_t u = 128;
  std::vector<double> v = SkewedSignal(u, 9);
  WaveletHistogram hist(u, TopKByMagnitude(AllCoeffs(v), 10));
  std::vector<double> recon = hist.Reconstruct();
  HistogramSnapshot snap = Snap(hist);
  for (uint64_t lo = 0; lo < u; lo += 17) {
    for (uint64_t hi = lo; hi <= u; hi += 23) {
      double direct = std::accumulate(recon.begin() + lo, recon.begin() + hi, 0.0);
      EXPECT_NEAR(RangeSum(snap, lo, hi), direct, 1e-6);
    }
  }
}

TEST(WaveletHistogramTest, SseMatchesBruteForce) {
  const uint64_t u = 64;
  std::vector<double> v = SkewedSignal(u, 21);
  std::vector<WCoeff> truth = AllCoeffs(v);
  WaveletHistogram hist(u, TopKByMagnitude(truth, 5));
  std::vector<double> recon = hist.Reconstruct();
  double brute = 0.0;
  for (uint64_t i = 0; i < u; ++i) {
    double d = recon[i] - v[i];
    brute += d * d;
  }
  EXPECT_NEAR(SseAgainstTrueCoefficients(Snap(hist), truth), brute,
              1e-6 * (1 + brute));
}

TEST(WaveletHistogramTest, IdealSseIsLowerBoundOverPerturbedSynopses) {
  const uint64_t u = 64;
  std::vector<double> v = SkewedSignal(u, 33);
  std::vector<WCoeff> truth = AllCoeffs(v);
  const size_t k = 8;
  double ideal = IdealSse(truth, k);

  // Exact top-k achieves the ideal SSE.
  WaveletHistogram best(u, TopKByMagnitude(truth, k));
  EXPECT_NEAR(SseAgainstTrueCoefficients(Snap(best), truth), ideal,
              1e-6 * (1 + ideal));

  // Any perturbation of the kept values can only do worse.
  std::vector<WCoeff> noisy = TopKByMagnitude(truth, k);
  for (WCoeff& c : noisy) c.value += 1.5;
  WaveletHistogram worse(u, noisy);
  EXPECT_GE(SseAgainstTrueCoefficients(Snap(worse), truth), ideal);
}

TEST(WaveletHistogramTest, MoreTermsNeverIncreaseIdealSse) {
  const uint64_t u = 256;
  std::vector<double> v = SkewedSignal(u, 41);
  std::vector<WCoeff> truth = AllCoeffs(v);
  double prev = IdealSse(truth, 1);
  for (size_t k = 2; k <= 64; k *= 2) {
    double cur = IdealSse(truth, k);
    EXPECT_LE(cur, prev + 1e-9);
    prev = cur;
  }
}

TEST(WaveletHistogramTest, EmptyHistogramSseIsTotalEnergy) {
  const uint64_t u = 32;
  std::vector<double> v = SkewedSignal(u, 55);
  std::vector<WCoeff> truth = AllCoeffs(v);
  WaveletHistogram empty(u, {});
  EXPECT_NEAR(SseAgainstTrueCoefficients(Snap(empty), truth),
              TotalEnergy(truth), 1e-6);
}

TEST(WaveletHistogramTest, EnergyOfSynopsis) {
  WaveletHistogram hist(8, {{0, 3.0}, {5, -4.0}});
  EXPECT_NEAR(hist.Energy(), 25.0, 1e-12);
  EXPECT_EQ(hist.num_terms(), 2u);
  EXPECT_EQ(hist.domain_size(), 8u);
}

}  // namespace
}  // namespace wavemr
