#include "wavelet/topk.h"

#include <gtest/gtest.h>

namespace wavemr {
namespace {

TEST(TopKTest, SelectsLargestMagnitudes) {
  std::vector<WCoeff> coeffs = {{0, 1.0}, {1, -9.0}, {2, 4.0}, {3, -2.0}, {4, 8.5}};
  std::vector<WCoeff> top = TopKByMagnitude(coeffs, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].index, 1u);
  EXPECT_EQ(top[1].index, 4u);
  EXPECT_EQ(top[2].index, 2u);
}

TEST(TopKTest, KLargerThanInputReturnsAllSorted) {
  std::vector<WCoeff> coeffs = {{0, 1.0}, {1, -3.0}};
  std::vector<WCoeff> top = TopKByMagnitude(coeffs, 10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].index, 1u);
}

TEST(TopKTest, TiesBrokenByIndex) {
  std::vector<WCoeff> coeffs = {{5, 2.0}, {1, -2.0}, {3, 2.0}};
  std::vector<WCoeff> top = TopKByMagnitude(coeffs, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].index, 1u);
  EXPECT_EQ(top[1].index, 3u);
}

TEST(TopKTest, ZeroKIsEmpty) {
  std::vector<WCoeff> coeffs = {{0, 1.0}};
  EXPECT_TRUE(TopKByMagnitude(coeffs, 0).empty());
}

TEST(TopBottomKTest, SignedSelection) {
  std::vector<WCoeff> coeffs = {{0, 5.0}, {1, -7.0}, {2, 3.0}, {3, -1.0}, {4, 6.0}};
  TopBottomK tb = SelectTopBottomK(coeffs, 2);
  ASSERT_EQ(tb.top.size(), 2u);
  EXPECT_EQ(tb.top[0].index, 4u);  // 6.0
  EXPECT_EQ(tb.top[1].index, 0u);  // 5.0
  ASSERT_EQ(tb.bottom.size(), 2u);
  EXPECT_EQ(tb.bottom[0].index, 1u);  // -7.0
  EXPECT_EQ(tb.bottom[1].index, 3u);  // -1.0
}

TEST(TopBottomKTest, OverlapWhenFewEntries) {
  std::vector<WCoeff> coeffs = {{0, 5.0}};
  TopBottomK tb = SelectTopBottomK(coeffs, 3);
  EXPECT_EQ(tb.top.size(), 1u);
  EXPECT_EQ(tb.bottom.size(), 1u);
  EXPECT_EQ(tb.top[0].index, tb.bottom[0].index);
}

}  // namespace
}  // namespace wavemr
