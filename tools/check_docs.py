#!/usr/bin/env python3
"""Documentation consistency checker (the `docs-check` CI job).

Validates, across README.md and every docs/*.md file:

  1. Internal markdown links resolve: relative link targets exist on disk
     (resolved from the containing file), and `#anchor` fragments match a
     heading in the target file (GitHub slug rules). http(s)/mailto links
     are skipped.
  2. `path/file.ext:line` code references point at a real file with at
     least that many lines, so renames and large edits can't silently
     strand the docs.
  3. README.md does not duplicate a docs/ heading: the README is an
     overview that links into docs/, not a second copy of it.

Exits 0 when clean, 1 with one line per problem otherwise.

Usage: tools/check_docs.py [--root REPO_ROOT]
"""

import argparse
import os
import re
import sys

# [text](target) — excluding images; target captured up to the first ')'.
LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$")
FENCE_RE = re.compile(r"^(```|~~~)")
# src/mapreduce/shuffle.h:123 style code references.
CODE_REF_RE = re.compile(
    r"\b((?:src|tests|tools|bench|examples|docs)/[\w./-]+\.(?:h|cc|cpp|py|md|json|txt|yml)):(\d+)\b"
)


def github_slug(heading):
    """GitHub's heading-to-anchor slug: lowercase, drop punctuation,
    spaces to hyphens (inline code/emphasis markers stripped first)."""
    text = re.sub(r"[`*_]", "", heading).strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def parse_doc(path):
    """Returns (lines, headings) with fenced code blocks blanked out so
    links and headings inside ``` fences are ignored."""
    with open(path, encoding="utf-8") as f:
        raw = f.read().splitlines()
    lines = []
    headings = []
    in_fence = False
    for line in raw:
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            lines.append("")
            continue
        if in_fence:
            lines.append("")
            continue
        lines.append(line)
        m = HEADING_RE.match(line)
        if m:
            headings.append(m.group(2).strip())
    return lines, headings


def check_file(path, root, anchors_by_file, problems):
    lines, _ = parse_doc(path)
    base = os.path.dirname(path)
    rel = os.path.relpath(path, root)
    for lineno, line in enumerate(lines, 1):
        for m in LINK_RE.finditer(line):
            target = m.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            frag = None
            if "#" in target:
                target, frag = target.split("#", 1)
            if target == "":
                target_path = path  # same-file anchor
            else:
                target_path = os.path.normpath(os.path.join(base, target))
                if not os.path.exists(target_path):
                    problems.append(
                        "%s:%d: broken link target %s" % (rel, lineno, m.group(1))
                    )
                    continue
            if frag is not None:
                if not target_path.endswith(".md"):
                    continue
                anchors = anchors_by_file.get(os.path.abspath(target_path))
                if anchors is None:
                    _, headings = parse_doc(target_path)
                    anchors = {github_slug(h) for h in headings}
                    anchors_by_file[os.path.abspath(target_path)] = anchors
                if frag not in anchors:
                    problems.append(
                        "%s:%d: broken anchor #%s in link to %s"
                        % (rel, lineno, frag, target or os.path.basename(path))
                    )
        for m in CODE_REF_RE.finditer(line):
            ref_path = os.path.join(root, m.group(1))
            ref_line = int(m.group(2))
            if not os.path.exists(ref_path):
                problems.append(
                    "%s:%d: code reference to missing file %s" % (rel, lineno, m.group(1))
                )
                continue
            with open(ref_path, encoding="utf-8", errors="replace") as f:
                num_lines = sum(1 for _ in f)
            if ref_line > num_lines:
                problems.append(
                    "%s:%d: code reference %s:%d past end of file (%d lines)"
                    % (rel, lineno, m.group(1), ref_line, num_lines)
                )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None, help="repo root (default: parent of tools/)")
    args = parser.parse_args()
    root = os.path.abspath(
        args.root or os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
    )

    docs_dir = os.path.join(root, "docs")
    readme = os.path.join(root, "README.md")
    targets = [readme] if os.path.exists(readme) else []
    if os.path.isdir(docs_dir):
        targets += sorted(
            os.path.join(docs_dir, f)
            for f in os.listdir(docs_dir)
            if f.endswith(".md")
        )
    if not targets:
        sys.stderr.write("error: no README.md or docs/*.md found under %s\n" % root)
        return 2

    problems = []
    anchors_by_file = {}
    for path in targets:
        check_file(path, root, anchors_by_file, problems)

    # The README must not duplicate docs/ sections. Top-level titles (#) are
    # allowed to repeat ("wavemr" etc.); section headings (##+) are not.
    docs_headings = {}
    for path in targets:
        if not path.startswith(docs_dir):
            continue
        _, headings = parse_doc(path)
        for h in headings:
            docs_headings.setdefault(github_slug(h), os.path.relpath(path, root))
    if os.path.exists(readme):
        lines, _ = parse_doc(readme)
        for lineno, line in enumerate(lines, 1):
            m = HEADING_RE.match(line)
            if not m or len(m.group(1)) < 2:
                continue
            slug = github_slug(m.group(2))
            if slug in docs_headings:
                problems.append(
                    "README.md:%d: heading '%s' duplicates a section of %s — "
                    "link to it instead" % (lineno, m.group(2).strip(), docs_headings[slug])
                )

    for p in problems:
        sys.stderr.write(p + "\n")
    if problems:
        sys.stderr.write("%d documentation problem(s)\n" % len(problems))
        return 1
    print("docs check: %d file(s) clean" % len(targets))
    return 0


if __name__ == "__main__":
    sys.exit(main())
