// wavemr command-line tool, three subcommands:
//
//   wavemr_cli build (--input=FILE | --generate=zipf|worldcup) [options]
//       build a wavelet histogram with any of the paper's algorithms,
//       optionally evaluate it (--evaluate) or save it (--out=FILE)
//   wavemr_cli serve ...
//       serve a snapshot over TCP (same engine as the wavemr_serve binary)
//   wavemr_cli query --port=N (--point=X | --range=LO,HI | --topk=N |
//                              --stats | --rebuild)
//       query a running server
//
// A legacy flat invocation (first argument is a --flag) forwards to `build`
// with a deprecation warning. Exit code 0 on success; errors go to stderr.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "core/failpoint.h"
#include "core/flags.h"
#include "core/io.h"
#include "core/thread_pool.h"
#include "data/frequency.h"
#include "histogram/builder.h"
#include "serve/client.h"
#include "serve/estimator.h"
#include "serve/serve_main.h"
#include "serve/snapshot.h"

namespace wavemr {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: wavemr_cli <build|serve|query> [options]\n"
      "  build   build a wavelet histogram (see wavemr_cli build --help)\n"
      "  serve   serve a snapshot over TCP  (see wavemr_cli serve --help)\n"
      "  query   query a running server     (see wavemr_cli query --help)\n");
  return 2;
}

int FlagError(const Status& status, const FlagParser& parser) {
  std::fprintf(stderr, "%s\n%s", status.ToString().c_str(),
               parser.Help().c_str());
  return 2;
}

// ---------------------------------------------------------------------------
// wavemr_cli build
// ---------------------------------------------------------------------------

int BuildMain(int argc, char** argv, int start) {
  DataArgs data;
  BuildArgs build;
  std::string out_file;
  bool evaluate = false;
  bool dump = false;
  FlagParser parser(
      "wavemr_cli build (--input=FILE | --generate=zipf|worldcup) [options]");
  RegisterDataFlags(&parser, &data);
  RegisterBuildFlags(&parser, &build);
  parser.String("out", &out_file, "save the snapshot to this file (servable "
                                  "with wavemr_cli serve --snapshot)");
  parser.Bool("evaluate", &evaluate,
              "also compute SSE vs the exact coefficients (scans the data)");
  parser.Bool("dump", &dump, "print the retained coefficients");

  Status st = parser.Parse(argc, argv, start);
  if (!st.ok()) return FlagError(st, parser);
  if (parser.help_requested()) {
    std::printf("%s", parser.Help().c_str());
    return 0;
  }

  if (!build.failpoints.empty()) {
    st = Failpoints::ArmFromSpec(build.failpoints);
    if (!st.ok()) return FlagError(st, parser);
  }
  auto io_backend = ParseIoBackendKind(build.spill_io);
  if (!io_backend.ok()) return FlagError(io_backend.status(), parser);

  auto dataset = MakeDataset(data);
  if (!dataset.ok()) return FlagError(dataset.status(), parser);

  auto kind = ParseAlgorithmKind(build.algo);
  if (!kind.ok()) return FlagError(kind.status(), parser);

  auto result =
      BuildWaveletHistogram(**dataset, *kind, build.ToBuildOptions(data.seed));
  if (!result.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("algorithm   : %s\n", result->algorithm.c_str());
  std::printf("dataset     : n=%llu u=%llu m=%llu\n",
              static_cast<unsigned long long>((*dataset)->info().num_records),
              static_cast<unsigned long long>((*dataset)->info().domain_size),
              static_cast<unsigned long long>((*dataset)->info().num_splits));
  std::printf("threads     : %d\n",
              build.threads == 0 ? ThreadPool::DefaultThreadCount()
                                 : build.threads);
  std::printf("synopsis    : %zu terms\n", result->histogram.num_terms());
  std::printf("rounds      : %zu\n", result->stats.NumRounds());
  std::printf("map wall ms : %.1f\n", result->stats.TotalMapWallMs());
  std::printf("comm bytes  : %llu\n",
              static_cast<unsigned long long>(result->stats.TotalCommBytes()));
  std::printf("sim seconds : %.2f\n", result->stats.TotalSeconds());
  std::printf("spill files : %llu\n",
              static_cast<unsigned long long>(result->stats.TotalSpillFiles()));
  std::printf("spill bytes : %llu\n",
              static_cast<unsigned long long>(result->stats.TotalSpillBytes()));
  std::printf("spill sim s : %.2f\n", result->stats.TotalSpillSeconds());
  // Engine line, "spill"-prefixed so bit-identity diffs that compare sync
  // vs async runs filter it with the other spill/timing lines.
  std::printf("spill io    : %s (queue %d, prefetch %d)\n",
              IoBackendKindName(IoOptions{*io_backend, 0,
                                          build.io_queue_depth,
                                          build.io_prefetch_depth}
                                    .ResolvedBackend()),
              build.io_queue_depth, build.io_prefetch_depth);
  // Recovery telemetry (0/0 on a healthy disk; environment-dependent, so
  // bit-identity diffs must filter this line like the timing lines).
  std::printf("spill rescue: %llu fallbacks, %llu retries\n",
              static_cast<unsigned long long>(
                  result->stats.TotalSpillFallbacks()),
              static_cast<unsigned long long>(
                  result->stats.TotalSpillRetries()));
  // Worst per-round equi-depth range balance (max/min planned pairs; 0 =
  // no partitioned sorted round) and total stolen sub-ranges.
  double spread = 0.0;
  uint64_t steals = 0;
  for (const RoundStats& r : result->stats.rounds) {
    spread = std::max(spread, r.ReduceRangeSpread());
    steals += r.reduce_steals;
  }
  std::printf("reduce skew : %.3f (max/min pairs per range, %llu steals)\n",
              spread, static_cast<unsigned long long>(steals));

  if (evaluate || !out_file.empty()) {
    HistogramSnapshot snapshot = result->ToSnapshot();
    if (evaluate) {
      std::vector<WCoeff> truth = TrueCoefficients(**dataset);
      std::printf("SSE         : %.6e\n",
                  SseAgainstTrueCoefficients(snapshot, truth));
      std::printf("ideal SSE   : %.6e\n",
                  IdealSse(truth, static_cast<size_t>(build.k)));
    }
    if (!out_file.empty()) {
      st = snapshot.WriteFile(out_file);
      if (!st.ok()) {
        std::fprintf(stderr, "cannot write snapshot: %s\n",
                     st.ToString().c_str());
        return 1;
      }
      std::printf("snapshot    : %s (%zu terms)\n", out_file.c_str(),
                  snapshot.num_terms());
    }
  }
  if (dump) {
    std::printf("coefficients (index value):\n");
    for (const WCoeff& c : result->histogram.coefficients()) {
      std::printf("  %llu %.10g\n", static_cast<unsigned long long>(c.index),
                  c.value);
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// wavemr_cli query
// ---------------------------------------------------------------------------

int QueryMain(int argc, char** argv, int start) {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string point;
  std::string range;
  std::string topk;
  bool stats = false;
  bool rebuild = false;
  FlagParser parser(
      "wavemr_cli query --port=N (--point=X | --range=LO,HI | --topk=N | "
      "--stats | --rebuild)");
  parser.String("host", &host, "server host");
  parser.I32("port", &port, "server port (required)");
  parser.String("point", &point, "estimate the frequency of key X");
  parser.String("range", &range, "estimate the frequency sum over [LO,HI)");
  parser.String("topk", &topk, "fetch the N largest-magnitude coefficients");
  parser.Bool("stats", &stats, "fetch server + snapshot statistics");
  parser.Bool("rebuild", &rebuild,
              "ask the server to rebuild and publish a new version");

  Status st = parser.Parse(argc, argv, start);
  if (!st.ok()) return FlagError(st, parser);
  if (parser.help_requested()) {
    std::printf("%s", parser.Help().c_str());
    return 0;
  }
  if (port <= 0) return FlagError(Status::InvalidArgument("--port is required"), parser);
  const int ops = (!point.empty()) + (!range.empty()) + (!topk.empty()) +
                  stats + rebuild;
  if (ops != 1) {
    return FlagError(Status::InvalidArgument(
                         "exactly one of --point/--range/--topk/--stats/"
                         "--rebuild is required"),
                     parser);
  }

  ServeClient client;
  st = client.Connect(host, port);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // Estimates print with %.17g: enough digits that the printed value
  // round-trips to the exact double the server computed.
  if (!point.empty()) {
    const uint64_t x = std::strtoull(point.c_str(), nullptr, 10);
    auto r = client.Point(x);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("point %llu : %.17g (version %llu)\n",
                static_cast<unsigned long long>(x), r->estimate,
                static_cast<unsigned long long>(r->version));
    return 0;
  }
  if (!range.empty()) {
    const size_t comma = range.find(',');
    if (comma == std::string::npos) {
      return FlagError(Status::InvalidArgument("--range expects LO,HI"),
                       parser);
    }
    const uint64_t lo = std::strtoull(range.substr(0, comma).c_str(), nullptr, 10);
    const uint64_t hi = std::strtoull(range.substr(comma + 1).c_str(), nullptr, 10);
    auto r = client.Range(lo, hi);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("range [%llu, %llu) : %.17g (version %llu)\n",
                static_cast<unsigned long long>(lo),
                static_cast<unsigned long long>(hi), r->estimate,
                static_cast<unsigned long long>(r->version));
    return 0;
  }
  if (!topk.empty()) {
    const uint32_t n =
        static_cast<uint32_t>(std::strtoul(topk.c_str(), nullptr, 10));
    auto r = client.TopK(n);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("top %zu coefficients (version %llu):\n",
                r->coefficients.size(),
                static_cast<unsigned long long>(r->version));
    for (const WCoeff& c : r->coefficients) {
      std::printf("  %llu %.17g\n", static_cast<unsigned long long>(c.index),
                  c.value);
    }
    return 0;
  }
  if (rebuild) {
    auto r = client.Rebuild();
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("rebuilt: version %llu\n",
                static_cast<unsigned long long>(*r));
    return 0;
  }
  auto r = client.Stats();
  if (!r.ok()) {
    std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
    return 1;
  }
  std::printf("version        : %llu\n",
              static_cast<unsigned long long>(r->version));
  std::printf("published      : %llu\n",
              static_cast<unsigned long long>(r->snapshots_published));
  std::printf("algorithm      : %s\n", r->algorithm.c_str());
  std::printf("domain size    : %llu\n",
              static_cast<unsigned long long>(r->domain_size));
  std::printf("terms          : %llu\n",
              static_cast<unsigned long long>(r->num_terms));
  std::printf("queries served : %llu\n",
              static_cast<unsigned long long>(r->queries_served));
  std::printf("build comm     : %llu bytes\n",
              static_cast<unsigned long long>(r->build_comm_bytes));
  std::printf("build sim time : %.2f s\n", r->build_sim_seconds);
  std::printf("conns shed     : %llu\n",
              static_cast<unsigned long long>(r->connections_shed));
  std::printf("idle disconnects: %llu\n",
              static_cast<unsigned long long>(r->idle_disconnects));
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "build") return BuildMain(argc, argv, 2);
  if (cmd == "serve") return ServeMain(argc, argv, 2);
  if (cmd == "query") return QueryMain(argc, argv, 2);
  if (cmd == "--help" || cmd == "-h") {
    Usage();
    return 0;
  }
  if (cmd.rfind("--", 0) == 0) {
    // Legacy flat invocation (pre-subcommand scripts): forward to build.
    std::fprintf(stderr,
                 "wavemr_cli: flat flags are deprecated; use "
                 "`wavemr_cli build ...`\n");
    return BuildMain(argc, argv, 1);
  }
  std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
  return Usage();
}

}  // namespace
}  // namespace wavemr

int main(int argc, char** argv) { return wavemr::Main(argc, argv); }
