// wavemr command-line tool: build a wavelet histogram of a binary
// fixed-length-record key file (or a generated dataset) with any of the
// paper's algorithms, and optionally evaluate it.
//
//   wavemr_cli --input=keys.bin --record-bytes=4 --u=65536 --splits=64 \
//              --algo=twolevel-s --k=30 --eps=0.01 [--evaluate] [--dump]
//   wavemr_cli --generate=zipf --n=1000000 --alpha=1.1 --u=65536 ...
//
// Exit code 0 on success; errors go to stderr.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "core/thread_pool.h"
#include "data/file_dataset.h"
#include "data/frequency.h"
#include "histogram/builder.h"

namespace wavemr {
namespace {

struct CliOptions {
  std::string input;          // binary file of fixed-length records
  std::string generate;      // "zipf" | "worldcup" (instead of --input)
  uint64_t n = 1 << 20;      // generated records
  double alpha = 1.1;
  uint64_t u = 1 << 16;
  uint64_t splits = 64;
  uint32_t record_bytes = 4;
  std::string algo = "twolevel-s";
  size_t k = 30;
  double eps = 0.01;
  uint64_t seed = 42;
  int threads = 0;            // 0 = hardware concurrency
  int reduce_tasks = 0;       // 0 = match the map thread count
  uint64_t shuffle_buffer_bytes = 0;  // 0 = keep the CostModel default
  bool force_sorted_shuffle = false;  // sorted delivery on every round
  bool evaluate = false;  // compute SSE vs ground truth (scans the data)
  bool dump = false;      // print the retained coefficients
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *out = arg + prefix.size();
  return true;
}

StatusOr<AlgorithmKind> ParseAlgo(const std::string& s) {
  if (s == "send-v") return AlgorithmKind::kSendV;
  if (s == "send-coef") return AlgorithmKind::kSendCoef;
  if (s == "h-wtopk") return AlgorithmKind::kHWTopk;
  if (s == "basic-s") return AlgorithmKind::kBasicS;
  if (s == "improved-s") return AlgorithmKind::kImprovedS;
  if (s == "twolevel-s") return AlgorithmKind::kTwoLevelS;
  if (s == "send-sketch") return AlgorithmKind::kSendSketch;
  return Status::InvalidArgument(
      "unknown --algo (expected send-v|send-coef|h-wtopk|basic-s|improved-s|"
      "twolevel-s|send-sketch): " + s);
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: wavemr_cli (--input=FILE | --generate=zipf|worldcup) [options]\n"
      "  --record-bytes=N  record size of the input file (>= 4; key first)\n"
      "  --u=N             key domain size (power of two)\n"
      "  --splits=N        number of input splits (mappers)\n"
      "  --n=N --alpha=A   generated dataset size / skew\n"
      "  --algo=NAME       send-v|send-coef|h-wtopk|basic-s|improved-s|\n"
      "                    twolevel-s|send-sketch (default twolevel-s)\n"
      "  --k=N             synopsis size (default 30)\n"
      "  --eps=E           sampling error parameter (default 0.01)\n"
      "  --seed=S          RNG seed (default 42)\n"
      "  --threads=N       map-task worker threads (default: all hardware\n"
      "                    threads; results are identical for any N)\n"
      "  --reduce-tasks=N  key-range reduce partitions for sorted rounds\n"
      "                    (default: match --threads; identical results)\n"
      "  --shuffle-buffer-bytes=N\n"
      "                    retained-run budget before the shuffle spills to\n"
      "                    disk (default 256 MiB; identical results)\n"
      "  --force-sorted-shuffle\n"
      "                    sorted reducer delivery on every round (routes all\n"
      "                    algorithms through the retained-run/spill path)\n"
      "  --evaluate        also compute SSE vs the exact coefficients\n"
      "  --dump            print the retained coefficients\n");
  return 2;
}

int Main(int argc, char** argv) {
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argv[i], "input", &v)) {
      opt.input = v;
    } else if (ParseFlag(argv[i], "generate", &v)) {
      opt.generate = v;
    } else if (ParseFlag(argv[i], "n", &v)) {
      opt.n = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "alpha", &v)) {
      opt.alpha = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "u", &v)) {
      opt.u = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "splits", &v)) {
      opt.splits = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "record-bytes", &v)) {
      opt.record_bytes = static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (ParseFlag(argv[i], "algo", &v)) {
      opt.algo = v;
    } else if (ParseFlag(argv[i], "k", &v)) {
      opt.k = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "eps", &v)) {
      opt.eps = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "seed", &v)) {
      opt.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "threads", &v)) {
      opt.threads = static_cast<int>(std::strtol(v.c_str(), nullptr, 10));
      if (opt.threads < 0) {
        std::fprintf(stderr, "--threads must be >= 0\n");
        return Usage();
      }
    } else if (ParseFlag(argv[i], "reduce-tasks", &v)) {
      opt.reduce_tasks = static_cast<int>(std::strtol(v.c_str(), nullptr, 10));
      if (opt.reduce_tasks < 0) {
        std::fprintf(stderr, "--reduce-tasks must be >= 0\n");
        return Usage();
      }
    } else if (ParseFlag(argv[i], "shuffle-buffer-bytes", &v)) {
      opt.shuffle_buffer_bytes = std::strtoull(v.c_str(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--force-sorted-shuffle") == 0) {
      opt.force_sorted_shuffle = true;
    } else if (std::strcmp(argv[i], "--evaluate") == 0) {
      opt.evaluate = true;
    } else if (std::strcmp(argv[i], "--dump") == 0) {
      opt.dump = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return Usage();
    }
  }
  if (opt.input.empty() == opt.generate.empty()) {
    std::fprintf(stderr, "exactly one of --input / --generate is required\n");
    return Usage();
  }

  // Assemble the dataset.
  std::unique_ptr<Dataset> dataset;
  if (!opt.input.empty()) {
    auto file = FileDataset::Open(opt.input, opt.record_bytes, opt.u, opt.splits);
    if (!file.ok()) {
      std::fprintf(stderr, "cannot open dataset: %s\n",
                   file.status().ToString().c_str());
      return 1;
    }
    dataset = std::make_unique<FileDataset>(std::move(*file));
  } else if (opt.generate == "zipf") {
    ZipfDatasetOptions z;
    z.num_records = opt.n;
    z.domain_size = opt.u;
    z.alpha = opt.alpha;
    z.num_splits = opt.splits;
    z.record_bytes = opt.record_bytes;
    z.seed = opt.seed;
    dataset = std::make_unique<ZipfDataset>(z);
  } else if (opt.generate == "worldcup") {
    WorldCupDatasetOptions w;
    w.num_records = opt.n;
    w.num_clients = std::max<uint64_t>(opt.u >> 6, 2);
    w.num_objects = std::min<uint64_t>(opt.u, 64);
    w.num_splits = opt.splits;
    w.seed = opt.seed;
    dataset = std::make_unique<WorldCupDataset>(w);
  } else {
    std::fprintf(stderr, "unknown --generate: %s\n", opt.generate.c_str());
    return Usage();
  }

  auto kind = ParseAlgo(opt.algo);
  if (!kind.ok()) {
    std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
    return Usage();
  }

  BuildOptions build;
  build.k = opt.k;
  build.epsilon = opt.eps;
  build.seed = opt.seed;
  build.threads = opt.threads;
  build.reduce_tasks = opt.reduce_tasks;
  build.force_sorted_shuffle = opt.force_sorted_shuffle;
  if (opt.shuffle_buffer_bytes > 0) {
    build.cost_model.shuffle_buffer_bytes = opt.shuffle_buffer_bytes;
  }
  auto result = BuildWaveletHistogram(*dataset, *kind, build);
  if (!result.ok()) {
    std::fprintf(stderr, "build failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("algorithm   : %s\n", AlgorithmName(*kind));
  std::printf("dataset     : n=%llu u=%llu m=%llu\n",
              static_cast<unsigned long long>(dataset->info().num_records),
              static_cast<unsigned long long>(dataset->info().domain_size),
              static_cast<unsigned long long>(dataset->info().num_splits));
  std::printf("threads     : %d\n",
              opt.threads == 0 ? ThreadPool::DefaultThreadCount() : opt.threads);
  std::printf("synopsis    : %zu terms\n", result->histogram.num_terms());
  std::printf("rounds      : %zu\n", result->stats.NumRounds());
  std::printf("map wall ms : %.1f\n", result->stats.TotalMapWallMs());
  std::printf("comm bytes  : %llu\n",
              static_cast<unsigned long long>(result->stats.TotalCommBytes()));
  std::printf("sim seconds : %.2f\n", result->stats.TotalSeconds());
  std::printf("spill files : %llu\n",
              static_cast<unsigned long long>(result->stats.TotalSpillFiles()));
  std::printf("spill bytes : %llu\n",
              static_cast<unsigned long long>(result->stats.TotalSpillBytes()));
  std::printf("spill sim s : %.2f\n", result->stats.TotalSpillSeconds());

  if (opt.evaluate) {
    std::vector<WCoeff> truth = TrueCoefficients(*dataset);
    std::printf("SSE         : %.6e\n",
                SseAgainstTrueCoefficients(result->histogram, truth));
    std::printf("ideal SSE   : %.6e\n", IdealSse(truth, opt.k));
  }
  if (opt.dump) {
    std::printf("coefficients (index value):\n");
    for (const WCoeff& c : result->histogram.coefficients()) {
      std::printf("  %llu %.10g\n", static_cast<unsigned long long>(c.index),
                  c.value);
    }
  }
  return 0;
}

}  // namespace
}  // namespace wavemr

int main(int argc, char** argv) { return wavemr::Main(argc, argv); }
