// Standalone query server: builds (or loads) a wavelet-histogram snapshot
// and serves point/range/top-k estimates over the length-prefixed TCP
// protocol until SIGINT/SIGTERM.
//
//   wavemr_serve --generate=zipf --n=1000000 --u=65536 --algo=twolevel-s \
//                --port=7070
//   wavemr_serve --snapshot=histogram.snap --port=0   # ephemeral port
//
// Prints "wavemr_serve listening on port N" once ready. Query it with
// `wavemr_cli query` or bench_serve_load.
#include "serve/serve_main.h"

int main(int argc, char** argv) { return wavemr::ServeMain(argc, argv, 1); }
